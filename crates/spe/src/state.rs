//! Pluggable state backends, epoch checkpoints and the recovery runner.
//!
//! Fault tolerance follows the classic aligned-barrier design (Chandy–Lamport cuts,
//! as popularised by Flink, and the backend-parameterised operator state of arcon):
//!
//! 1. When a [`CheckpointConfig`] is installed on a query, every Source injects an
//!    [`Element::Barrier`](crate::tuple::Element) into its output each `interval`
//!    tuples and commits its replay offset for that epoch.
//! 2. Barriers flow through every channel in stream order (and across the
//!    distributed wire as `WireFrame::Barrier`). Stateless operators forward them;
//!    fan-in operators (Union, Join, the shard fan-in) *align*: an input that has
//!    delivered the barrier is held back until every other input reaches the same
//!    barrier, at which point the operator commits a [`Snapshot`] of its keyed state
//!    — including its slice of the provenance graph, i.e. the buffered tuples with
//!    their live `U1`/`U2`/`N` pointers — and forwards the barrier once.
//! 3. An epoch is *complete* once every registered participant (sources, stateful
//!    operators, sinks) has committed it. Recovery rebuilds the query from scratch,
//!    restores each participant from the latest complete epoch and replays the
//!    sources from their committed offsets; because the engine is deterministic, the
//!    recovered run's sink output and stitched contribution sets are byte-identical
//!    to a fault-free run.
//!
//! The [`StateBackend`] trait hides where snapshots live: [`InMemoryBackend`] keeps
//! them as cheap `Arc` clones, [`SerializingBackend`] additionally accounts for the
//! serialised footprint of byte-encoded snapshots (source offsets, sink prefixes).
//! Graph-slice snapshots are process-local by design — the `N`/`U` pointers are
//! reference-counted pointers, not serialisable ids — which matches the paper's
//! single-process-per-instance deployment model.

use std::any::Any;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::error::SpeError;
use crate::runtime::{QueryHandle, QueryReport};

/// One operator-state snapshot committed for one epoch.
#[derive(Clone)]
pub enum Snapshot {
    /// A process-local snapshot shared by `Arc` (window buffers carrying live
    /// provenance pointers cannot be serialised without losing the graph).
    Inline(Arc<dyn Any + Send + Sync>),
    /// A byte-encoded snapshot (source replay offsets, sink prefixes, counters).
    Bytes(Vec<u8>),
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Snapshot::Inline(_) => f.write_str("Snapshot::Inline(..)"),
            Snapshot::Bytes(b) => write!(f, "Snapshot::Bytes({} bytes)", b.len()),
        }
    }
}

impl Snapshot {
    /// Wraps a process-local state value.
    pub fn inline<S: Any + Send + Sync>(state: S) -> Self {
        Snapshot::Inline(Arc::new(state))
    }

    /// Wraps an already-encoded byte snapshot.
    pub fn bytes(bytes: Vec<u8>) -> Self {
        Snapshot::Bytes(bytes)
    }

    /// Encodes a `u64` (e.g. a source replay offset) as a byte snapshot.
    pub fn u64(value: u64) -> Self {
        Snapshot::Bytes(value.to_le_bytes().to_vec())
    }

    /// Downcasts an inline snapshot back to its concrete state type.
    pub fn downcast<S: Any + Send + Sync>(&self) -> Option<Arc<S>> {
        match self {
            Snapshot::Inline(any) => Arc::clone(any).downcast().ok(),
            Snapshot::Bytes(_) => None,
        }
    }

    /// The raw bytes of a byte snapshot.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Snapshot::Bytes(b) => Some(b),
            Snapshot::Inline(_) => None,
        }
    }

    /// Decodes a snapshot previously produced by [`Snapshot::u64`].
    pub fn as_u64(&self) -> Option<u64> {
        let bytes = self.as_bytes()?;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    /// Serialised size of the snapshot (0 for inline snapshots).
    pub fn serialized_len(&self) -> usize {
        match self {
            Snapshot::Bytes(b) => b.len(),
            Snapshot::Inline(_) => 0,
        }
    }
}

/// Where committed snapshots live.
///
/// Backends are keyed by `(participant, epoch)`; committing the same key twice
/// overwrites (recovery replays re-commit the epochs after the restore point).
pub trait StateBackend: fmt::Debug + Send + Sync {
    /// Short human-readable backend name, used in reports.
    fn name(&self) -> &'static str;

    /// Stores a snapshot.
    fn put(&self, participant: &str, epoch: u64, snapshot: Snapshot);

    /// Retrieves a snapshot.
    fn get(&self, participant: &str, epoch: u64) -> Option<Snapshot>;

    /// Discards every snapshot of epochs strictly greater than `epoch` (incomplete
    /// epochs are dropped when recovery begins).
    fn remove_after(&self, epoch: u64);

    /// Number of snapshots currently stored.
    fn snapshot_count(&self) -> usize;

    /// Total serialised footprint of the stored snapshots, in bytes (inline
    /// snapshots contribute 0 — they are shared, not copied).
    fn serialized_bytes(&self) -> usize;

    /// Cumulative serialised bytes written since creation. Backends that do not
    /// track writes separately report their current footprint (writes minus
    /// whatever [`StateBackend::remove_after`] discarded);
    /// [`SerializingBackend`] overrides this with its true write counter.
    fn bytes_written(&self) -> u64 {
        self.serialized_bytes() as u64
    }

    /// Notifies the backend that `epoch` is complete across every registered
    /// participant. Durable backends persist this in their manifest so a restarted
    /// process knows which epochs form a usable cut; the in-memory backends ignore
    /// it.
    fn note_complete_epoch(&self, _epoch: u64) {}

    /// Whether snapshots survive the death of this process. `false` for the
    /// in-memory backends; the log-structured file backend (`genealog-store`)
    /// overrides this — the analyzer's GL014 diagnostic keys off it.
    fn is_durable(&self) -> bool {
        false
    }
}

type SnapshotMap = HashMap<(String, u64), Snapshot>;

/// The default backend: snapshots stay in memory exactly as committed.
#[derive(Debug, Default)]
pub struct InMemoryBackend {
    snapshots: Mutex<SnapshotMap>,
}

impl InMemoryBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateBackend for InMemoryBackend {
    fn name(&self) -> &'static str {
        "in-memory"
    }

    fn put(&self, participant: &str, epoch: u64, snapshot: Snapshot) {
        self.snapshots
            .lock()
            .insert((participant.to_string(), epoch), snapshot);
    }

    fn get(&self, participant: &str, epoch: u64) -> Option<Snapshot> {
        self.snapshots
            .lock()
            .get(&(participant.to_string(), epoch))
            .cloned()
    }

    fn remove_after(&self, epoch: u64) {
        self.snapshots.lock().retain(|(_, e), _| *e <= epoch);
    }

    fn snapshot_count(&self) -> usize {
        self.snapshots.lock().len()
    }

    fn serialized_bytes(&self) -> usize {
        self.snapshots
            .lock()
            .values()
            .map(Snapshot::serialized_len)
            .sum()
    }
}

/// A backend that stores byte snapshots as owned serialised copies (simulating a
/// durable store) and keeps graph-slice snapshots inline.
///
/// Byte snapshots are copied on commit and on restore, so a restore never aliases
/// the committing run's buffers; the backend additionally tracks the cumulative
/// number of bytes written, which the benchmarks use to report checkpoint overhead.
/// Inline snapshots (the provenance graph slices) cannot cross a process boundary —
/// a documented limitation shared with the paper's in-process provenance graph.
#[derive(Debug, Default)]
pub struct SerializingBackend {
    inner: InMemoryBackend,
    bytes_written: Mutex<u64>,
}

impl SerializingBackend {
    /// Creates an empty serialising backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative number of serialised bytes written since creation (not reduced by
    /// [`StateBackend::remove_after`]).
    pub fn bytes_written(&self) -> u64 {
        *self.bytes_written.lock()
    }
}

impl StateBackend for SerializingBackend {
    fn name(&self) -> &'static str {
        "serializing"
    }

    fn put(&self, participant: &str, epoch: u64, snapshot: Snapshot) {
        let snapshot = match snapshot {
            // An owned copy stands in for the write to a durable store.
            Snapshot::Bytes(b) => {
                *self.bytes_written.lock() += b.len() as u64;
                Snapshot::Bytes(b.clone())
            }
            inline => inline,
        };
        self.inner.put(participant, epoch, snapshot);
    }

    fn get(&self, participant: &str, epoch: u64) -> Option<Snapshot> {
        self.inner.get(participant, epoch).map(|s| match s {
            Snapshot::Bytes(b) => Snapshot::Bytes(b.clone()),
            inline => inline,
        })
    }

    fn remove_after(&self, epoch: u64) {
        self.inner.remove_after(epoch);
    }

    fn snapshot_count(&self) -> usize {
        self.inner.snapshot_count()
    }

    fn serialized_bytes(&self) -> usize {
        self.inner.serialized_bytes()
    }

    fn bytes_written(&self) -> u64 {
        SerializingBackend::bytes_written(self)
    }
}

#[derive(Debug, Default)]
struct StoreState {
    /// Participants registered by the current (or last) run.
    participants: HashSet<String>,
    /// epoch -> participants that committed it.
    commits: BTreeMap<u64, HashSet<String>>,
    /// The epoch the next run restores from (set by [`CheckpointStore::begin_recovery`]).
    restore_epoch: Option<u64>,
    /// Number of recoveries performed so far.
    recoveries: u64,
    /// Failure fence: once raised, commits are discarded until the next
    /// [`CheckpointStore::begin_recovery`]. See [`CheckpointStore::fence`].
    fenced: bool,
    /// When the first commit of each not-yet-complete epoch arrived, for the
    /// commit-latency gauge.
    epoch_started: HashMap<u64, std::time::Instant>,
    /// Wall-clock nanoseconds between the first and the completing commit of the
    /// most recently completed epoch.
    last_commit_latency_ns: Option<u64>,
}

/// Coordinates epoch completeness across every participant of a deployment.
///
/// One store is shared — by `Arc` — across the origin query and every remote SPE
/// instance of a distributed deployment, so "latest complete epoch" is a
/// deployment-global cut. Operators register at thread start and commit once per
/// barrier; the recovery runner consults the store between attempts.
#[derive(Debug)]
pub struct CheckpointStore {
    backend: Arc<dyn StateBackend>,
    state: Mutex<StoreState>,
}

impl CheckpointStore {
    /// Creates a store over the given backend.
    pub fn new(backend: Arc<dyn StateBackend>) -> Arc<Self> {
        Arc::new(CheckpointStore {
            backend,
            state: Mutex::new(StoreState::default()),
        })
    }

    /// Creates a store over the default [`InMemoryBackend`].
    pub fn in_memory() -> Arc<Self> {
        Self::new(Arc::new(InMemoryBackend::new()))
    }

    /// The backend snapshots are stored in.
    pub fn backend(&self) -> &Arc<dyn StateBackend> {
        &self.backend
    }

    /// Registers a checkpoint participant (called by every participating operator
    /// when its thread starts). An epoch is complete only once every registered
    /// participant has committed it.
    pub fn register(&self, participant: &str) {
        self.state
            .lock()
            .participants
            .insert(participant.to_string());
    }

    /// Commits `participant`'s snapshot for `epoch`. Discarded while the store is
    /// [fenced](CheckpointStore::fence).
    pub fn commit(&self, participant: &str, epoch: u64, snapshot: Snapshot) {
        let mut state = self.state.lock();
        if state.fenced {
            return;
        }
        self.backend.put(participant, epoch, snapshot);
        state
            .epoch_started
            .entry(epoch)
            .or_insert_with(std::time::Instant::now);
        state
            .commits
            .entry(epoch)
            .or_default()
            .insert(participant.to_string());
        // The commit that completes an epoch closes its latency measurement.
        let complete = state
            .commits
            .get(&epoch)
            .is_some_and(|committed| state.participants.is_subset(committed));
        if complete {
            if let Some(started) = state.epoch_started.remove(&epoch) {
                state.last_commit_latency_ns = Some(started.elapsed().as_nanos() as u64);
            }
            // Durable backends flip their manifest here — the commit that
            // completes the cut is the one that makes it recoverable on disk.
            self.backend.note_complete_epoch(epoch);
        }
    }

    /// Raises the failure fence: every subsequent [`commit`](CheckpointStore::commit)
    /// is discarded until [`begin_recovery`](CheckpointStore::begin_recovery) clears
    /// the fence.
    ///
    /// A failing operator calls this *before* dropping its channel endpoints. Without
    /// the fence, a fan-in downstream of the failure would see a synthesized
    /// end-of-stream, exclude the dead input from barrier alignment and keep
    /// forwarding barriers built from the surviving inputs only — and if the
    /// participants cut off by the failure also keep committing (e.g. a remote shard
    /// behind a severed return link), a *partial* cut could reach completeness and
    /// become the restore point. Fencing at the failure site strictly precedes the
    /// synthesized end-of-stream, so no post-failure commit can complete an epoch.
    pub fn fence(&self) {
        self.state.lock().fenced = true;
    }

    /// Whether the failure fence is currently raised.
    pub fn is_fenced(&self) -> bool {
        self.state.lock().fenced
    }

    /// The greatest epoch every registered participant has committed, if any.
    pub fn latest_complete_epoch(&self) -> Option<u64> {
        let state = self.state.lock();
        state
            .commits
            .iter()
            .rev()
            .find(|(_, committed)| state.participants.is_subset(committed))
            .map(|(&epoch, _)| epoch)
    }

    /// Declares the previous run failed: pins the restore point to the latest
    /// complete epoch, discards every commit after it (incomplete epochs may contain
    /// snapshots influenced by the failure) and clears the participant registry for
    /// the next attempt. Returns the restore epoch, or `None` when no epoch ever
    /// completed (the next run starts from scratch).
    pub fn begin_recovery(&self) -> Option<u64> {
        let restore = self.latest_complete_epoch();
        let mut state = self.state.lock();
        state.restore_epoch = restore;
        if let Some(epoch) = restore {
            state.commits.retain(|&e, _| e <= epoch);
            self.backend.remove_after(epoch);
        } else {
            // No complete epoch: the next run starts from scratch and re-commits
            // every epoch, overwriting whatever the failed run left behind.
            state.commits.clear();
        }
        state.participants.clear();
        state.fenced = false;
        state.recoveries += 1;
        drop(state);
        genealog_metrics::Tracer::global().emit(
            "recovery-begin",
            self.backend.name(),
            match restore {
                Some(epoch) => format!("restoring from epoch {epoch}"),
                None => "no complete epoch; restarting from scratch".to_string(),
            },
        );
        restore
    }

    /// Adopts an externally-dictated restore point: pins `epoch` as the restore
    /// epoch, discards every commit and snapshot strictly after it, clears the
    /// participant registry and the failure fence, and counts a recovery.
    ///
    /// Unlike [`begin_recovery`](CheckpointStore::begin_recovery) the epoch is
    /// *not* derived from local commits: in a multi-process deployment the origin
    /// pins the deployment-global cut and ships it to each worker (in the
    /// `NodeDeployment` frame), and the worker's own store — reopened from its
    /// `--state-dir` — adopts it here. A worker may hold commits *beyond* the
    /// origin's cut (it committed epoch `e` durably, then died before the origin
    /// completed `e`); those are exactly the snapshots `remove_after` discards.
    pub fn restore_to(&self, epoch: u64) {
        let mut state = self.state.lock();
        state.restore_epoch = Some(epoch);
        state.commits.retain(|&e, _| e <= epoch);
        self.backend.remove_after(epoch);
        state.participants.clear();
        state.fenced = false;
        state.recoveries += 1;
        drop(state);
        genealog_metrics::Tracer::global().emit(
            "recovery-restore-to",
            self.backend.name(),
            format!("adopting origin-pinned restore epoch {epoch}"),
        );
    }

    /// The epoch the current run restores from (`None` outside recovery).
    pub fn restore_epoch(&self) -> Option<u64> {
        self.state.lock().restore_epoch
    }

    /// The snapshot `participant` should restore from, if the store is in recovery
    /// and the participant committed the restore epoch.
    pub fn restore_snapshot(&self, participant: &str) -> Option<Snapshot> {
        let epoch = self.restore_epoch()?;
        self.backend.get(participant, epoch)
    }

    /// Number of recoveries performed so far.
    pub fn recoveries(&self) -> u64 {
        self.state.lock().recoveries
    }

    /// Wall-clock nanoseconds between the first and the completing commit of the
    /// most recently completed epoch (`None` before any epoch completes). This is
    /// the live "epoch commit latency" gauge of the observability plane.
    pub fn last_epoch_commit_latency_ns(&self) -> Option<u64> {
        self.state.lock().last_commit_latency_ns
    }
}

/// Checkpointing configuration installed on a query via
/// [`Query::set_checkpoints`](crate::query::Query::set_checkpoints).
#[derive(Clone)]
pub struct CheckpointConfig {
    /// Number of tuples each Source emits per epoch (barriers are injected every
    /// `interval` tuples).
    pub interval: u64,
    /// The deployment-wide checkpoint store.
    pub store: Arc<CheckpointStore>,
    /// Retry/backoff policy [`run_with_recovery`] applies when driven through
    /// this configuration (see [`run_config_with_recovery`]).
    pub recovery: RecoveryConfig,
    /// Type-erased window persisters, keyed by the `TypeId` of the concrete
    /// `WindowStoreSnapshot<K, T, M>` they encode. Aggregate operators look
    /// their persister up here at barrier-commit time; with none registered
    /// they commit inline (process-local) snapshots.
    persisters: HashMap<std::any::TypeId, Arc<dyn Any + Send + Sync>>,
}

impl fmt::Debug for CheckpointConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointConfig")
            .field("interval", &self.interval)
            .field("store", &self.store)
            .field("recovery", &self.recovery)
            .field("persisters", &self.persisters.len())
            .finish()
    }
}

impl CheckpointConfig {
    /// Creates a configuration (interval clamped to at least 1).
    pub fn new(interval: u64, store: Arc<CheckpointStore>) -> Self {
        CheckpointConfig {
            interval: interval.max(1),
            store,
            recovery: RecoveryConfig::default(),
            persisters: HashMap::new(),
        }
    }

    /// Overrides the retry/backoff policy used when this configuration drives
    /// [`run_with_recovery`].
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Registers the byte codec for window snapshots of the concrete
    /// `(K, T, M)` type. Every aggregate whose store snapshots to
    /// `WindowStoreSnapshot<K, T, M>` — plain, sharded or fused — picks it up
    /// automatically; no operator constructor changes.
    pub fn with_window_persister<K, T, M>(
        mut self,
        persister: Arc<dyn crate::persist::WindowPersister<K, T, M>>,
    ) -> Self
    where
        K: 'static,
        T: 'static,
        M: 'static,
    {
        self.persisters.insert(
            std::any::TypeId::of::<crate::window::WindowStoreSnapshot<K, T, M>>(),
            Arc::new(persister),
        );
        self
    }

    /// The registered persister for `WindowStoreSnapshot<K, T, M>`, if any.
    pub fn window_persister<K, T, M>(
        &self,
    ) -> Option<Arc<dyn crate::persist::WindowPersister<K, T, M>>>
    where
        K: 'static,
        T: 'static,
        M: 'static,
    {
        self.persisters
            .get(&std::any::TypeId::of::<
                crate::window::WindowStoreSnapshot<K, T, M>,
            >())?
            .downcast_ref::<Arc<dyn crate::persist::WindowPersister<K, T, M>>>()
            .cloned()
    }
}

/// The cell through which operators observe the query's checkpoint configuration.
///
/// Operators capture the handle at construction time and read it when their thread
/// starts, so the configuration can be installed any time before `deploy()` — which
/// is what lets remote build closures install the shared store on the remote query.
pub type CheckpointHandle = Arc<OnceLock<CheckpointConfig>>;

/// Retry/backoff policy of [`run_with_recovery`].
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// Maximum number of runs (initial attempt included). Clamped to at least 1.
    pub max_attempts: usize,
    /// Delay between a failure and the next attempt (reconnect backoff).
    pub backoff: std::time::Duration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_attempts: 3,
            backoff: std::time::Duration::from_millis(10),
        }
    }
}

/// Runs a query with automatic recovery: `build` constructs a fresh deployment
/// (attempt number passed in, starting at 0) and returns its [`QueryHandle`] plus
/// whatever per-attempt handles the caller needs back (sinks, collectors). On
/// failure the store's [`begin_recovery`](CheckpointStore::begin_recovery) pins the
/// restore point, the runner backs off, and `build` is invoked again — fresh
/// channels, fresh links (this is the reconnect path for severed remote links).
///
/// Returns the report and handles of the first successful attempt.
///
/// # Errors
/// [`SpeError::RecoveryExhausted`] after `max_attempts` failed runs; build errors
/// propagate immediately.
pub fn run_with_recovery<R, F>(
    store: &Arc<CheckpointStore>,
    config: RecoveryConfig,
    mut build: F,
) -> Result<(QueryReport, R), SpeError>
where
    F: FnMut(usize) -> Result<(QueryHandle, R), SpeError>,
{
    let attempts = config.max_attempts.max(1);
    let mut last_error = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(config.backoff);
            genealog_metrics::Tracer::global().emit(
                "recovery-attempt",
                store.backend().name(),
                match store.restore_epoch() {
                    Some(epoch) => {
                        format!("attempt {attempt} of {attempts}: restoring epoch {epoch}")
                    }
                    None => format!(
                        "attempt {attempt} of {attempts}: no complete epoch, starting fresh"
                    ),
                },
            );
        }
        let (handle, extras) = build(attempt)?;
        match handle.wait() {
            Ok(report) => return Ok((report, extras)),
            Err(error) => {
                store.begin_recovery();
                last_error = Some(error);
            }
        }
    }
    Err(SpeError::RecoveryExhausted {
        attempts,
        last_error: Box::new(last_error.expect("at least one attempt ran")),
    })
}

/// [`run_with_recovery`] driven entirely by a [`CheckpointConfig`]: the store
/// and the retry/backoff policy both come from the configuration, so callers
/// tune recovery in one place.
///
/// # Errors
/// Same as [`run_with_recovery`].
pub fn run_config_with_recovery<R, F>(
    config: &CheckpointConfig,
    build: F,
) -> Result<(QueryReport, R), SpeError>
where
    F: FnMut(usize) -> Result<(QueryHandle, R), SpeError>,
{
    run_with_recovery(&config.store, config.recovery, build)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips_bytes_and_inline() {
        let s = Snapshot::u64(42);
        assert_eq!(s.as_u64(), Some(42));
        assert_eq!(s.serialized_len(), 8);
        assert!(s.downcast::<Vec<u8>>().is_none());

        let s = Snapshot::inline(vec![1u8, 2, 3]);
        assert_eq!(*s.downcast::<Vec<u8>>().unwrap(), vec![1, 2, 3]);
        assert!(s.as_bytes().is_none());
        assert_eq!(s.serialized_len(), 0);
    }

    #[test]
    fn complete_epoch_requires_every_participant() {
        let store = CheckpointStore::in_memory();
        store.register("src");
        store.register("agg");
        store.commit("src", 0, Snapshot::u64(10));
        assert_eq!(store.latest_complete_epoch(), None);
        store.commit("agg", 0, Snapshot::bytes(vec![]));
        assert_eq!(store.latest_complete_epoch(), Some(0));
        store.commit("src", 1, Snapshot::u64(20));
        store.commit("agg", 1, Snapshot::bytes(vec![]));
        store.commit("src", 2, Snapshot::u64(30));
        // Epoch 2 incomplete: latest complete stays 1.
        assert_eq!(store.latest_complete_epoch(), Some(1));
    }

    #[test]
    fn recovery_pins_restore_point_and_drops_incomplete_epochs() {
        let store = CheckpointStore::in_memory();
        store.register("src");
        store.commit("src", 0, Snapshot::u64(10));
        store.commit("src", 1, Snapshot::u64(20));
        store.register("late");
        store.commit("late", 0, Snapshot::bytes(vec![]));
        assert_eq!(store.begin_recovery(), Some(0));
        assert_eq!(store.restore_epoch(), Some(0));
        assert_eq!(store.restore_snapshot("src").unwrap().as_u64(), Some(10));
        // Epoch 1's snapshot was dropped with the incomplete epoch.
        assert!(store.backend().get("src", 1).is_none());
        assert_eq!(store.recoveries(), 1);
        // Participants re-register on the next attempt.
        store.register("src");
        store.register("late");
        store.commit("src", 1, Snapshot::u64(20));
        store.commit("late", 1, Snapshot::bytes(vec![]));
        assert_eq!(store.latest_complete_epoch(), Some(1));
    }

    #[test]
    fn recovery_without_any_complete_epoch_starts_fresh() {
        let store = CheckpointStore::in_memory();
        store.register("src");
        store.register("agg");
        store.commit("src", 0, Snapshot::u64(10));
        assert_eq!(store.begin_recovery(), None);
        assert_eq!(store.restore_epoch(), None);
        assert!(store.restore_snapshot("src").is_none());
    }

    #[test]
    fn serializing_backend_accounts_for_bytes() {
        let backend = SerializingBackend::new();
        backend.put("src", 0, Snapshot::u64(1));
        backend.put("src", 1, Snapshot::u64(2));
        backend.put("agg", 0, Snapshot::inline(7i64));
        assert_eq!(backend.bytes_written(), 16);
        assert_eq!(backend.serialized_bytes(), 16);
        assert_eq!(backend.snapshot_count(), 3);
        backend.remove_after(0);
        assert_eq!(backend.snapshot_count(), 2);
        // Cumulative write counter is monotone.
        assert_eq!(backend.bytes_written(), 16);
        assert_eq!(
            backend.get("agg", 0).unwrap().downcast::<i64>().map(|v| *v),
            Some(7)
        );
    }

    #[test]
    fn run_with_recovery_retries_until_success() {
        let store = CheckpointStore::in_memory();
        let mut seen = Vec::new();
        let result = run_with_recovery(&store, RecoveryConfig::default(), |attempt| {
            seen.push(attempt);
            // Build a trivial query that succeeds only on the second attempt.
            let mut q = crate::query::Query::new(crate::provenance::NoProvenance);
            let src = q.source(
                "s",
                crate::operator::source::VecSource::with_period(vec![1i64], 1_000),
            );
            if attempt == 0 {
                let boom = q.map_one("boom", src, |_| -> i64 { panic!("injected") });
                q.discard(boom);
            } else {
                q.discard(src);
            }
            Ok((q.deploy()?, attempt))
        });
        let (_, winning_attempt) = result.unwrap();
        assert_eq!(winning_attempt, 1);
        assert_eq!(seen, vec![0, 1]);
        assert_eq!(store.recoveries(), 1);
    }

    #[test]
    fn run_with_recovery_gives_up_after_max_attempts() {
        let store = CheckpointStore::in_memory();
        let config = RecoveryConfig {
            max_attempts: 2,
            backoff: std::time::Duration::from_millis(1),
        };
        let result: Result<(QueryReport, ()), SpeError> =
            run_with_recovery(&store, config, |_attempt| {
                let mut q = crate::query::Query::new(crate::provenance::NoProvenance);
                let src = q.source(
                    "s",
                    crate::operator::source::VecSource::with_period(vec![1i64], 1_000),
                );
                let boom = q.map_one("boom", src, |_| -> i64 { panic!("always") });
                q.discard(boom);
                Ok((q.deploy()?, ()))
            });
        match result {
            Err(SpeError::RecoveryExhausted { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected RecoveryExhausted, got {other:?}"),
        }
        assert_eq!(store.recoveries(), 2);
    }
}
