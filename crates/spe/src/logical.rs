//! The declarative logical-plan API.
//!
//! A [`LogicalPlan`] records *what* a continuous query computes — sources, stateless
//! transforms, windowed aggregates and joins, sinks — without committing to *how* it
//! executes. Execution decisions (how many shard instances a stateful operator runs,
//! where each shard is placed, which stateless chains fuse into one thread, how
//! channel budgets are split) belong to the planner ([`crate::planner`]), which
//! lowers the logical graph to the physical [`Query`] at [`LogicalPlan::lower`]
//! time.
//!
//! Users therefore write each operator **exactly once** and attach optimizer hints
//! as annotations, instead of picking between `aggregate` / `sharded_aggregate` /
//! `sharded_aggregate_placed` variants:
//!
//! ```rust
//! use genealog_spe::logical::LogicalPlan;
//! use genealog_spe::parallel::Parallelism;
//! use genealog_spe::prelude::*;
//!
//! # fn main() -> Result<(), SpeError> {
//! let plan = LogicalPlan::new(NoProvenance);
//! let out = plan
//!     .source("meters", VecSource::with_period(
//!         (0..100u32).map(|i| (i % 8, i as i64)).collect(), 1_000))
//!     .filter("live", |r: &(u32, i64)| r.1 >= 0)
//!     .aggregate(
//!         "count",
//!         WindowSpec::tumbling(Duration::from_secs(60))?,
//!         |r: &(u32, i64)| r.0,
//!         |w: &WindowView<'_, u32, (u32, i64), ()>| (*w.key, w.len() as i64),
//!         |o: &(u32, i64)| o.0,
//!     )
//!     .with(Parallelism::shards(4)) // hint: the planner shards this aggregate
//!     .collecting_sink("sink");
//! plan.deploy()?.wait()?;
//! assert!(!out.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! # Annotations
//!
//! * [`LogicalStream::with`] — requested shard count of the producing stateful
//!   operator ([`Parallelism::shards(n)`](Parallelism::shards)); without it the
//!   planner uses [`PlannerConfig::parallelism`].
//! * [`LogicalStream::place`] / [`LogicalStream::place_join`] — explicit per-shard
//!   placements ([`ShardPlacement::Local`] or [`ShardPlacement::Remote`]); remote
//!   routes come from the `genealog-distributed` shard-group helpers.
//! * [`LogicalStream::keyed`] — re-establishes the canonical merge key after a
//!   payload-type-changing map, letting the map stay *inside* an open shard region
//!   (the annotation equivalent of the deprecated `map_shards`).
//!
//! # Escape hatches
//!
//! Extension crates (provenance unfolders, Send/Receive endpoints) operate on the
//! physical layer. [`LogicalPlan::extend_source`], [`LogicalStream::raw`],
//! [`LogicalStream::raw_with`] and [`LogicalStream::raw_sink`] splice
//! physical-layer builders into a logical plan; the callback runs at lowering time
//! with the planner-built [`Query`] and the lowered input stream(s).

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use genealog_analysis::{Diagnostics, LogicalFacts, LogicalNodeFacts, PlanFacts};

use crate::error::SpeError;
use crate::operator::aggregate::WindowView;
use crate::operator::sink::{CollectedStream, SinkStats};
use crate::operator::source::{SourceConfig, SourceGenerator};
use crate::parallel::{KeyComparator, Parallelism};
use crate::planner::{merge_cmp, AnalysisMode, Lowered, PlannerConfig};
use crate::provenance::ProvenanceSystem;
use crate::query::{JoinShardPlacement, Query, ShardPlacement, StreamRef};
use crate::runtime::QueryHandle;
use crate::time::Duration;
use crate::tuple::{GTuple, TupleData};
use crate::window::WindowSpec;

/// Identifier of a node in the logical graph.
pub type LogicalNodeId = usize;

/// A node of the logical graph (introspection and DOT rendering only; the lowering
/// state lives in the typed stream thunks).
struct LogicalNode {
    name: String,
    /// Human-readable operator kind ("source", "filter", "aggregate", ...).
    label: &'static str,
    /// Number of output streams this node produces (0 for sinks).
    outputs: usize,
    /// Number of output streams already consumed by downstream operators.
    consumed: usize,
    /// Requested shard count ([`LogicalStream::with`]).
    parallelism: Option<Parallelism>,
    /// Explicit shard placements ([`LogicalStream::place`]), type-erased; the
    /// lowering closure downcasts them back to `Vec<ShardPlacement<P, I, O>>`.
    placements: Option<Box<dyn Any>>,
    /// `(total, remote)` placement counts recorded for DOT rendering.
    placement_summary: Option<(usize, usize)>,
    /// Merge-key comparator re-established after a map
    /// ([`LogicalStream::keyed`]), type-erased `KeyComparator<T>`.
    merge_key: Option<Box<dyn Any>>,
}

/// A terminal lowering thunk; running it pulls its upstream slice of the graph
/// through the planner.
type SinkThunk<P> = Box<dyn FnOnce(&mut Query<P>)>;

/// Shared mutable state of a plan under construction.
struct PlanState<P: ProvenanceSystem> {
    provenance: P,
    config: PlannerConfig,
    nodes: Vec<LogicalNode>,
    edges: Vec<(LogicalNodeId, LogicalNodeId)>,
    /// Lowering thunks of the plan's terminal operators.
    sinks: Vec<SinkThunk<P>>,
}

type Shared<P> = Rc<RefCell<PlanState<P>>>;

/// The typed thunk lowering everything upstream of one logical stream.
type BuildThunk<P, T> = Box<dyn FnOnce(&mut Query<P>) -> Lowered<P, T>>;

/// A declarative query plan under construction (see the [module docs](self)).
pub struct LogicalPlan<P: ProvenanceSystem> {
    shared: Shared<P>,
}

/// A typed, move-only handle to a logical stream.
///
/// Like the physical [`StreamRef`], a `LogicalStream` is consumed by passing it to
/// exactly one downstream operator; fan-out is an explicit
/// [`multiplex`](LogicalStream::multiplex). Annotation methods
/// ([`with`](LogicalStream::with), [`place`](LogicalStream::place),
/// [`keyed`](LogicalStream::keyed)) return the stream unchanged apart from the
/// recorded hint.
pub struct LogicalStream<P: ProvenanceSystem, T: TupleData> {
    shared: Shared<P>,
    node: LogicalNodeId,
    build: BuildThunk<P, T>,
}

fn add_node<P: ProvenanceSystem>(
    shared: &Shared<P>,
    name: &str,
    label: &'static str,
    outputs: usize,
) -> LogicalNodeId {
    let mut state = shared.borrow_mut();
    let id = state.nodes.len();
    state.nodes.push(LogicalNode {
        name: name.to_string(),
        label,
        outputs,
        consumed: 0,
        parallelism: None,
        placements: None,
        placement_summary: None,
        merge_key: None,
    });
    id
}

fn connect<P: ProvenanceSystem>(shared: &Shared<P>, from: LogicalNodeId, to: LogicalNodeId) {
    let mut state = shared.borrow_mut();
    state.nodes[from].consumed += 1;
    state.edges.push((from, to));
}

impl<P: ProvenanceSystem> LogicalPlan<P> {
    /// Creates an empty plan with the default [`PlannerConfig`] (fusion on).
    pub fn new(provenance: P) -> Self {
        Self::with_config(provenance, PlannerConfig::default())
    }

    /// Creates an empty plan with an explicit planner configuration.
    pub fn with_config(provenance: P, config: PlannerConfig) -> Self {
        LogicalPlan {
            shared: Rc::new(RefCell::new(PlanState {
                provenance,
                config,
                nodes: Vec::new(),
                edges: Vec::new(),
                sinks: Vec::new(),
            })),
        }
    }

    /// The planner configuration the plan will be lowered with.
    pub fn config(&self) -> PlannerConfig {
        self.shared.borrow().config.clone()
    }

    /// Number of logical nodes added so far.
    pub fn node_count(&self) -> usize {
        self.shared.borrow().nodes.len()
    }

    /// Adds a Source backed by `generator` with the default source configuration.
    pub fn source<G: SourceGenerator>(
        &self,
        name: &str,
        generator: G,
    ) -> LogicalStream<P, G::Item> {
        self.source_with(name, generator, SourceConfig::default())
    }

    /// Adds a Source backed by `generator` with an explicit configuration.
    pub fn source_with<G: SourceGenerator>(
        &self,
        name: &str,
        generator: G,
        config: SourceConfig,
    ) -> LogicalStream<P, G::Item> {
        let owned = name.to_string();
        self.extend_source(name, "source", move |q| {
            q.source_with(&owned, generator, config)
        })
    }

    /// Escape hatch: a root logical stream produced by a physical-layer builder
    /// (e.g. a Receive endpoint materialising a stream arriving from another SPE
    /// instance). The callback runs once, at lowering time.
    pub fn extend_source<T, F>(&self, name: &str, label: &'static str, f: F) -> LogicalStream<P, T>
    where
        T: TupleData,
        F: FnOnce(&mut Query<P>) -> StreamRef<T, P::Meta> + 'static,
    {
        let node = add_node(&self.shared, name, label, 1);
        LogicalStream {
            shared: Rc::clone(&self.shared),
            node,
            build: Box::new(move |q| Lowered::Stream(f(q))),
        }
    }

    /// Renders the *logical* graph in Graphviz DOT format: one node per declared
    /// operator, annotated with its requested parallelism and placements. Compare
    /// with [`Query::to_dot`] on the lowered plan to see what the planner inserted
    /// (exchanges, fan-ins, fused chains, Send/Receive endpoints).
    pub fn to_dot(&self) -> String {
        fn escape(name: &str) -> String {
            name.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let state = self.shared.borrow();
        let mut dot = String::from("digraph logical {\n  rankdir=LR;\n");
        for (id, node) in state.nodes.iter().enumerate() {
            let mut hints = String::new();
            // Explicit placements override a `.with(..)` hint at lowering; the
            // rendered shard count reflects the same precedence.
            if let Some((total, remote)) = node.placement_summary {
                hints.push_str(&format!(" \u{d7}{total}"));
                if remote > 0 {
                    hints.push_str(&format!(", {remote} remote"));
                }
            } else if let Some(p) = node.parallelism {
                let n = p.resolve(state.config.parallelism);
                if n > 1 {
                    hints.push_str(&format!(" \u{d7}{n}"));
                }
            }
            if node.merge_key.is_some() {
                hints.push_str(" keyed");
            }
            dot.push_str(&format!(
                "  l{} [label=\"{}\\n({}{})\"];\n",
                id,
                escape(&node.name),
                node.label,
                hints
            ));
        }
        for (from, to) in &state.edges {
            dot.push_str(&format!("  l{from} -> l{to};\n"));
        }
        dot.push_str("}\n");
        dot
    }

    /// Runs the planner: validates the logical graph and lowers it to a physical
    /// [`Query`] (sharding, placement, fusion and channel budgets decided here).
    ///
    /// Unless [`PlannerConfig::analysis`] is [`AnalysisMode::Off`], the deploy-time
    /// analyzer (`genealog-analysis`) runs over the lowered plan: every finding is
    /// emitted on the global tracer (kind `"plan-analysis"`), and under
    /// [`AnalysisMode::Deny`] error-severity findings reject the plan. Use
    /// [`LogicalPlan::analyze`] to inspect the report programmatically.
    ///
    /// # Errors
    /// Returns [`SpeError::InvalidQuery`] if the plan has no sinks or a logical
    /// stream was never consumed, and [`SpeError::PlanRejected`] when the analyzer
    /// denies the plan.
    pub fn lower(self) -> Result<Query<P>, SpeError> {
        let mode = self.shared.borrow().config.analysis;
        if mode == AnalysisMode::Off {
            return Ok(self.lower_inner()?.0);
        }
        let analyzed = self.analyze()?;
        for d in &analyzed.report {
            genealog_metrics::Tracer::global().emit_once(
                "plan-analysis",
                format!("{}:{}", d.code, d.path.join("->")),
                d.render(),
            );
        }
        if mode == AnalysisMode::Deny && analyzed.report.has_errors() {
            return Err(SpeError::PlanRejected {
                report: analyzed.report.render(),
            });
        }
        Ok(analyzed.query)
    }

    /// Lowers the plan and runs the deploy-time analyzer, returning the query
    /// together with the [`PlanFacts`] snapshot and the [`Diagnostics`] report.
    ///
    /// `analyze` never rejects: even under [`AnalysisMode::Deny`] the caller gets
    /// the lowered query and decides what to do with the findings (the `spe-lint`
    /// binary and the control plane's `/analyze` endpoint are built on this).
    ///
    /// # Errors
    /// Returns [`SpeError::InvalidQuery`] if the plan fails structural validation.
    pub fn analyze(self) -> Result<Analyzed<P>, SpeError> {
        let (query, logical) = self.lower_inner()?;
        let mut facts = query.plan_facts();
        facts.logical = Some(logical);
        let report = genealog_analysis::analyze(&facts);
        Ok(Analyzed {
            query,
            facts,
            report,
        })
    }

    /// The planner pass proper: validation + lowering, no analysis. Also snapshots
    /// the pre-lowering [`LogicalFacts`] — the thunks *take* annotations as they
    /// consume them, so the snapshot must happen before any sink thunk runs.
    fn lower_inner(self) -> Result<(Query<P>, LogicalFacts), SpeError> {
        {
            let state = self.shared.borrow();
            if state.sinks.is_empty() {
                return Err(SpeError::InvalidQuery("logical plan has no sinks".into()));
            }
            for node in &state.nodes {
                if node.consumed < node.outputs {
                    return Err(SpeError::InvalidQuery(format!(
                        "logical stream of `{}` is never consumed (attach a sink or discard it)",
                        node.name
                    )));
                }
            }
        }
        let (provenance, config, sinks) = {
            let mut state = self.shared.borrow_mut();
            (
                state.provenance.clone(),
                state.config.clone(),
                std::mem::take(&mut state.sinks),
            )
        };
        let logical = {
            let state = self.shared.borrow();
            LogicalFacts {
                nodes: state
                    .nodes
                    .iter()
                    .map(|n| LogicalNodeFacts {
                        name: n.name.clone(),
                        label: n.label.to_string(),
                        requested_shards: n.parallelism.map(|p| p.resolve(config.parallelism)),
                        placement_total: n.placement_summary.map(|(total, _)| total),
                        placement_remote: n.placement_summary.map_or(0, |(_, remote)| remote),
                    })
                    .collect(),
            }
        };
        let mut q = Query::with_config(provenance, config.query_config());
        if let Some(checkpoints) = config.checkpoints {
            q.set_checkpoints(checkpoints);
        }
        for sink in sinks {
            sink(&mut q);
        }
        // Every annotation is *taken* by the lowering rule that honours it
        // (`.with`/`.place` by aggregate and join, `.keyed` by a map). Whatever is
        // still attached sat on a node no rule consults — reject it instead of
        // silently dropping the user's hint.
        {
            let state = self.shared.borrow();
            for node in &state.nodes {
                let stray = if node.placements.is_some() {
                    Some("place")
                } else if node.parallelism.is_some() {
                    Some("with")
                } else if node.merge_key.is_some() {
                    Some("keyed")
                } else {
                    None
                };
                if let Some(annotation) = stray {
                    return Err(SpeError::InvalidQuery(format!(
                        "`.{annotation}(..)` annotation on `{}` ({}) has no effect there: \
                         `.with`/`.place` apply to the stream returned by an aggregate or \
                         join, `.keyed` to the map it should keep inside a shard region",
                        node.name, node.label
                    )));
                }
            }
        }
        Ok((q, logical))
    }

    /// Lowers the plan and deploys the physical query in one call.
    ///
    /// # Errors
    /// Propagates [`LogicalPlan::lower`] and [`Query::deploy`] errors.
    pub fn deploy(self) -> Result<QueryHandle, SpeError> {
        self.lower()?.deploy()
    }
}

impl<P: ProvenanceSystem> std::fmt::Debug for LogicalPlan<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.borrow();
        f.debug_struct("LogicalPlan")
            .field("provenance", &state.provenance.label())
            .field("nodes", &state.nodes.len())
            .field("edges", &state.edges.len())
            .field("sinks", &state.sinks.len())
            .finish()
    }
}

/// The result of [`LogicalPlan::analyze`]: the lowered query together with the
/// analyzer's input snapshot and its report.
pub struct Analyzed<P: ProvenanceSystem> {
    /// The lowered physical query, ready to deploy.
    pub query: Query<P>,
    /// The plain-data snapshot the analyzer ran over (physical graph plus the
    /// pre-lowering logical annotations).
    pub facts: PlanFacts,
    /// The analyzer's findings, errors first.
    pub report: Diagnostics,
}

impl<P: ProvenanceSystem> std::fmt::Debug for Analyzed<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzed")
            .field("errors", &self.report.error_count())
            .field("warnings", &self.report.warning_count())
            .finish()
    }
}

/// The lowered branch streams of a fan-out, each taken exactly once.
type BranchStreams<T, M> = Vec<Option<StreamRef<T, M>>>;

/// Memoised lowering state of a multi-output operator (Multiplex): the first
/// consumed branch lowers the operator; every branch then takes its own stream.
struct FanOutMemo<P: ProvenanceSystem, T: TupleData> {
    build: Option<BuildThunk<P, T>>,
    streams: Option<BranchStreams<T, P::Meta>>,
}

impl<P: ProvenanceSystem, T: TupleData> LogicalStream<P, T> {
    /// The logical node that produces this stream.
    pub fn node(&self) -> LogicalNodeId {
        self.node
    }

    /// The name of the producing logical node.
    pub fn name(&self) -> String {
        self.shared.borrow().nodes[self.node].name.clone()
    }

    // ------------------------------------------------------------------
    // Annotations
    // ------------------------------------------------------------------

    /// Annotates the producing operator with a requested shard count. Only stateful
    /// operators (aggregate, join) shard; attaching the hint to any other operator
    /// is rejected at [`LogicalPlan::lower`] time.
    pub fn with(self, parallelism: Parallelism) -> Self {
        self.shared.borrow_mut().nodes[self.node].parallelism = Some(parallelism);
        self
    }

    /// Annotates the producing stateful operator with an explicit placement per
    /// shard (`I` is the operator's *input* payload type). Overrides
    /// [`LogicalStream::with`].
    ///
    /// # Panics
    /// Panics if `placements` is empty. Lowering panics if `I` does not match the
    /// operator's input type.
    pub fn place<I: TupleData>(self, placements: Vec<ShardPlacement<P, I, T>>) -> Self {
        assert!(!placements.is_empty(), "placements must not be empty");
        let summary = (
            placements.len(),
            placements.iter().filter(|p| p.is_remote()).count(),
        );
        {
            let mut state = self.shared.borrow_mut();
            let node = &mut state.nodes[self.node];
            node.placements = Some(Box::new(placements));
            node.placement_summary = Some(summary);
        }
        self
    }

    /// The join counterpart of [`LogicalStream::place`] (`L`/`R` are the join's
    /// input payload types).
    ///
    /// # Panics
    /// Panics if `placements` is empty. Lowering panics if `L`/`R` do not match the
    /// join's input types.
    pub fn place_join<L: TupleData, R: TupleData>(
        self,
        placements: Vec<JoinShardPlacement<P, L, R, T>>,
    ) -> Self {
        assert!(!placements.is_empty(), "placements must not be empty");
        let summary = (
            placements.len(),
            placements.iter().filter(|p| p.is_remote()).count(),
        );
        {
            let mut state = self.shared.borrow_mut();
            let node = &mut state.nodes[self.node];
            node.placements = Some(Box::new(placements));
            node.placement_summary = Some(summary);
        }
        self
    }

    /// Re-establishes the canonical merge key on this stream's payload type.
    ///
    /// Inside an open shard region the planner keeps stateless operators on the
    /// per-shard streams. A filter preserves the payload type — and with it the
    /// region's merge key — but a map does not; `keyed` tells the planner how
    /// equal-timestamp runs of the *mapped* payloads are ordered at the fan-in, so
    /// the map can stay inside the region instead of forcing an early merge. The
    /// key must identify the same groups as the sharded operator's output key
    /// (i.e. the map must be key-preserving), which is the same contract the
    /// deprecated `map_shards` + `keyed_merge` combination placed on callers.
    ///
    /// Attach it to the stream **returned by the map** it should keep in the
    /// region; anywhere else the annotation is rejected at
    /// [`LogicalPlan::lower`] time. (On a map outside any shard region —
    /// because the planner decided not to shard — the key is simply unused:
    /// the hint is contingent on sharding, not a requirement for it.)
    pub fn keyed<K, KF>(self, key: KF) -> Self
    where
        K: Ord,
        KF: FnMut(&T) -> K + Send + 'static,
    {
        let cmp: KeyComparator<T> = merge_cmp(key);
        self.shared.borrow_mut().nodes[self.node].merge_key = Some(Box::new(cmp));
        self
    }

    // ------------------------------------------------------------------
    // Stateless operators
    // ------------------------------------------------------------------

    /// Adds a Filter forwarding the tuples that satisfy `predicate`.
    ///
    /// Inside an open shard region the filter runs as one instance per shard (the
    /// payload type — and the merge key — are preserved, so the region stays open).
    pub fn filter<F>(self, name: &str, predicate: F) -> LogicalStream<P, T>
    where
        F: FnMut(&T) -> bool + Clone + Send + 'static,
    {
        let node = add_node(&self.shared, name, "filter", 1);
        connect(&self.shared, self.node, node);
        let prev = self.build;
        let owned = name.to_string();
        LogicalStream {
            shared: self.shared,
            node,
            build: Box::new(move |q| match prev(q) {
                Lowered::Stream(stream) => Lowered::Stream(q.filter(&owned, stream, predicate)),
                Lowered::Shards {
                    group,
                    streams,
                    cmp,
                } => Lowered::Shards {
                    group,
                    streams: q.filter_shard_streams(&owned, streams, predicate),
                    cmp,
                },
            }),
        }
    }

    /// Adds a Map producing zero or more output payloads per input payload.
    ///
    /// Inside an open shard region the map stays per-shard when the stream carries
    /// a [`keyed`](LogicalStream::keyed) annotation; otherwise the planner seals
    /// the region (inserts the canonical fan-in) first.
    pub fn map<O, F>(self, name: &str, function: F) -> LogicalStream<P, O>
    where
        O: TupleData,
        F: FnMut(&T) -> Vec<O> + Clone + Send + 'static,
    {
        let node = add_node(&self.shared, name, "map", 1);
        connect(&self.shared, self.node, node);
        let prev = self.build;
        let owned = name.to_string();
        let shared = Rc::clone(&self.shared);
        LogicalStream {
            shared: self.shared,
            node,
            build: Box::new(move |q| {
                let keyed: Option<KeyComparator<O>> =
                    shared.borrow_mut().nodes[node].merge_key.take().map(|any| {
                        *any.downcast::<KeyComparator<O>>().unwrap_or_else(|_| {
                            panic!("merge-key annotation on `{owned}` has the wrong payload type")
                        })
                    });
                match (prev(q), keyed) {
                    (Lowered::Shards { group, streams, .. }, Some(cmp)) => Lowered::Shards {
                        group,
                        streams: q.map_shard_streams(&owned, streams, function),
                        cmp,
                    },
                    (lowered, _) => {
                        let stream = lowered.seal(q);
                        Lowered::Stream(q.map(&owned, stream, function))
                    }
                }
            }),
        }
    }

    /// Adds a Map producing exactly one output payload per input payload (see
    /// [`LogicalStream::map`]).
    pub fn map_one<O, F>(self, name: &str, mut function: F) -> LogicalStream<P, O>
    where
        O: TupleData,
        F: FnMut(&T) -> O + Clone + Send + 'static,
    {
        self.map(name, move |data| vec![function(data)])
    }

    // ------------------------------------------------------------------
    // Stateful operators
    // ------------------------------------------------------------------

    /// Adds an Aggregate over a sliding time window with a group-by key.
    ///
    /// `out_key` re-extracts the group key from an output payload; the planner uses
    /// it to order the canonical fan-in when it decides to shard the operator
    /// (via [`with`](LogicalStream::with), [`place`](LogicalStream::place) or
    /// [`PlannerConfig::parallelism`]). Unannotated aggregates under the default
    /// configuration lower to the plain single-instance operator.
    pub fn aggregate<O, K, KF, AF, OK>(
        self,
        name: &str,
        spec: WindowSpec,
        key_fn: KF,
        agg_fn: AF,
        out_key: OK,
    ) -> LogicalStream<P, O>
    where
        O: TupleData,
        K: Ord + std::hash::Hash + Clone + Send + Sync + 'static,
        KF: FnMut(&T) -> K + Clone + Send + 'static,
        AF: FnMut(&WindowView<'_, K, T, P::Meta>) -> O + Clone + Send + 'static,
        OK: FnMut(&O) -> K + Send + 'static,
    {
        let node = add_node(&self.shared, name, "aggregate", 1);
        connect(&self.shared, self.node, node);
        let prev = self.build;
        let owned = name.to_string();
        let shared = Rc::clone(&self.shared);
        LogicalStream {
            shared: self.shared,
            node,
            build: Box::new(move |q| {
                let input = prev(q).seal(q);
                let (placements, default) = {
                    let mut state = shared.borrow_mut();
                    let config_default = state.config.parallelism;
                    let node_state = &mut state.nodes[node];
                    // Annotations are taken, not read: whatever is still attached to
                    // a node after lowering was placed where no rule consumes it,
                    // and `lower()` rejects it.
                    let default = node_state
                        .parallelism
                        .take()
                        .unwrap_or_default()
                        .resolve(config_default);
                    (node_state.placements.take(), default)
                };
                let placements: Vec<ShardPlacement<P, T, O>> = match placements {
                    Some(any) => *any
                        .downcast::<Vec<ShardPlacement<P, T, O>>>()
                        .unwrap_or_else(|_| {
                            panic!(
                                "placement annotation on `{owned}` has the wrong input/output types"
                            )
                        }),
                    None if default <= 1 => {
                        // Planner decision: one local instance needs no exchange.
                        return Lowered::Stream(q.aggregate(&owned, input, spec, key_fn, agg_fn));
                    }
                    None => ShardPlacement::all_local(default),
                };
                let streams =
                    q.shard_aggregate_streams(&owned, input, spec, key_fn, agg_fn, placements);
                Lowered::Shards {
                    group: owned.clone(),
                    streams,
                    cmp: merge_cmp(out_key),
                }
            }),
        }
    }

    /// Adds a windowed equi-key Join with `right`.
    ///
    /// `left_key`/`right_key` partition the inputs when the planner shards the join
    /// (matching pairs always meet inside one shard); `predicate` further filters
    /// candidate pairs *within* a key; `out_key` orders the canonical fan-in.
    /// Unannotated joins under the default configuration lower to the plain
    /// single-instance operator (the key extractors are then unused).
    ///
    /// # Panics
    /// Panics if `right` belongs to a different [`LogicalPlan`].
    #[allow(clippy::too_many_arguments)] // one declaration site for every lowering
    pub fn join<R, O, K, LK, RK, OK, PR, CF>(
        self,
        name: &str,
        right: LogicalStream<P, R>,
        window: Duration,
        left_key: LK,
        right_key: RK,
        out_key: OK,
        predicate: PR,
        combine: CF,
    ) -> LogicalStream<P, O>
    where
        R: TupleData,
        O: TupleData,
        K: Ord + std::hash::Hash + Clone + Send + 'static,
        LK: FnMut(&T) -> K + Send + 'static,
        RK: FnMut(&R) -> K + Send + 'static,
        OK: FnMut(&O) -> K + Send + 'static,
        PR: FnMut(&T, &R) -> bool + Clone + Send + 'static,
        CF: FnMut(&T, &R) -> O + Clone + Send + 'static,
    {
        assert!(
            Rc::ptr_eq(&self.shared, &right.shared),
            "joined streams must belong to the same logical plan"
        );
        let node = add_node(&self.shared, name, "join", 1);
        connect(&self.shared, self.node, node);
        connect(&self.shared, right.node, node);
        let left_build = self.build;
        let right_build = right.build;
        let owned = name.to_string();
        let shared = Rc::clone(&self.shared);
        LogicalStream {
            shared: self.shared,
            node,
            build: Box::new(move |q| {
                let left = left_build(q).seal(q);
                let right = right_build(q).seal(q);
                let (placements, default) = {
                    let mut state = shared.borrow_mut();
                    let config_default = state.config.parallelism;
                    let node_state = &mut state.nodes[node];
                    // Annotations are taken, not read: whatever is still attached to
                    // a node after lowering was placed where no rule consumes it,
                    // and `lower()` rejects it.
                    let default = node_state
                        .parallelism
                        .take()
                        .unwrap_or_default()
                        .resolve(config_default);
                    (node_state.placements.take(), default)
                };
                let placements: Vec<JoinShardPlacement<P, T, R, O>> = match placements {
                    Some(any) => *any
                        .downcast::<Vec<JoinShardPlacement<P, T, R, O>>>()
                        .unwrap_or_else(|_| {
                            panic!(
                                "placement annotation on `{owned}` has the wrong input/output types"
                            )
                        }),
                    None if default <= 1 => {
                        return Lowered::Stream(
                            q.join(&owned, left, right, window, predicate, combine),
                        );
                    }
                    None => JoinShardPlacement::all_local(default),
                };
                let streams = q.shard_join_streams(
                    &owned, left, right, window, left_key, right_key, predicate, combine,
                    placements,
                );
                Lowered::Shards {
                    group: owned.clone(),
                    streams,
                    cmp: merge_cmp(out_key),
                }
            }),
        }
    }

    // ------------------------------------------------------------------
    // Fan-out / fan-in
    // ------------------------------------------------------------------

    /// Adds a Multiplex copying every tuple of this stream to `outputs` branches.
    ///
    /// # Panics
    /// Panics if `outputs` is zero.
    pub fn multiplex(self, name: &str, outputs: usize) -> Vec<LogicalStream<P, T>> {
        assert!(outputs > 0, "Multiplex requires at least one output");
        let node = add_node(&self.shared, name, "multiplex", outputs);
        connect(&self.shared, self.node, node);
        let memo = Rc::new(RefCell::new(FanOutMemo {
            build: Some(self.build),
            streams: None,
        }));
        let owned = name.to_string();
        (0..outputs)
            .map(|i| {
                let memo = Rc::clone(&memo);
                let owned = owned.clone();
                LogicalStream {
                    shared: Rc::clone(&self.shared),
                    node,
                    build: Box::new(move |q| {
                        let mut memo = memo.borrow_mut();
                        if memo.streams.is_none() {
                            let build = memo.build.take().expect("multiplex lowered once");
                            let input = build(q).seal(q);
                            memo.streams = Some(
                                q.multiplex(&owned, input, outputs)
                                    .into_iter()
                                    .map(Some)
                                    .collect(),
                            );
                        }
                        let stream = memo.streams.as_mut().expect("lowered above")[i]
                            .take()
                            .expect("each multiplex branch is consumed exactly once");
                        Lowered::Stream(stream)
                    }),
                }
            })
            .collect()
    }

    /// Adds a Union deterministically merging `inputs` into one stream.
    ///
    /// # Panics
    /// Panics if `inputs` is empty or the streams belong to different plans.
    pub fn union(name: &str, inputs: Vec<LogicalStream<P, T>>) -> LogicalStream<P, T> {
        assert!(!inputs.is_empty(), "Union requires at least one input");
        let shared = Rc::clone(&inputs[0].shared);
        assert!(
            inputs.iter().all(|s| Rc::ptr_eq(&s.shared, &shared)),
            "unioned streams must belong to the same logical plan"
        );
        let node = add_node(&shared, name, "union", 1);
        let mut builds = Vec::with_capacity(inputs.len());
        for input in inputs {
            connect(&shared, input.node, node);
            builds.push(input.build);
        }
        let owned = name.to_string();
        LogicalStream {
            shared,
            node,
            build: Box::new(move |q| {
                let streams: Vec<StreamRef<T, P::Meta>> =
                    builds.into_iter().map(|b| b(q).seal(q)).collect();
                Lowered::Stream(q.union(&owned, streams))
            }),
        }
    }

    // ------------------------------------------------------------------
    // Terminals
    // ------------------------------------------------------------------

    /// Adds a Sink invoking `callback` for every sink tuple; returns its statistics
    /// handle (populated once the lowered query runs).
    pub fn sink<F>(self, name: &str, callback: F) -> Arc<SinkStats>
    where
        F: FnMut(&Arc<GTuple<T, P::Meta>>) + Send + 'static,
    {
        let stats = SinkStats::new();
        let handle = Arc::clone(&stats);
        let owned = name.to_string();
        self.terminal(name, "sink", move |q, stream| {
            q.sink_into(&owned, stream, callback, handle)
        });
        stats
    }

    /// Adds a Sink collecting every sink tuple in memory; the returned handle is
    /// populated once the lowered query runs.
    pub fn collecting_sink(self, name: &str) -> CollectedStream<T, P::Meta> {
        let collected = CollectedStream::new();
        let copy = collected.clone();
        let owned = name.to_string();
        self.terminal(name, "sink", move |q, stream| {
            q.collecting_sink_into(&owned, stream, &copy)
        });
        collected
    }

    /// Explicitly discards this stream: the lowered stream's elements are dropped
    /// without a consumer.
    pub fn discard(self) {
        let name = format!("{}.discard", self.name());
        self.terminal(&name, "discard", |q, stream| q.discard(stream));
    }

    // ------------------------------------------------------------------
    // Escape hatches to the physical layer
    // ------------------------------------------------------------------

    /// Escape hatch: transforms this stream with a physical-layer builder. The
    /// callback runs at lowering time with the planner-built [`Query`] and the
    /// sealed input stream, and may add any number of physical operators.
    pub fn raw<O, F>(self, name: &str, f: F) -> LogicalStream<P, O>
    where
        O: TupleData,
        F: FnOnce(&mut Query<P>, StreamRef<T, P::Meta>) -> StreamRef<O, P::Meta> + 'static,
    {
        let node = add_node(&self.shared, name, "physical", 1);
        connect(&self.shared, self.node, node);
        let prev = self.build;
        LogicalStream {
            shared: self.shared,
            node,
            build: Box::new(move |q| {
                let stream = prev(q).seal(q);
                Lowered::Stream(f(q, stream))
            }),
        }
    }

    /// Escape hatch combining this stream with a second one (e.g. a multi-stream
    /// provenance unfolder).
    ///
    /// # Panics
    /// Panics if `other` belongs to a different [`LogicalPlan`].
    pub fn raw_with<U, O, F>(
        self,
        other: LogicalStream<P, U>,
        name: &str,
        f: F,
    ) -> LogicalStream<P, O>
    where
        U: TupleData,
        O: TupleData,
        F: FnOnce(
                &mut Query<P>,
                StreamRef<T, P::Meta>,
                StreamRef<U, P::Meta>,
            ) -> StreamRef<O, P::Meta>
            + 'static,
    {
        assert!(
            Rc::ptr_eq(&self.shared, &other.shared),
            "combined streams must belong to the same logical plan"
        );
        let node = add_node(&self.shared, name, "physical", 1);
        connect(&self.shared, self.node, node);
        connect(&self.shared, other.node, node);
        let left = self.build;
        let right = other.build;
        LogicalStream {
            shared: self.shared,
            node,
            build: Box::new(move |q| {
                let left = left(q).seal(q);
                let right = right(q).seal(q);
                Lowered::Stream(f(q, left, right))
            }),
        }
    }

    /// Escape hatch: terminates this stream with a physical-layer builder (e.g. a
    /// Send endpoint shipping the stream to another SPE instance).
    pub fn raw_sink<F>(self, name: &str, f: F)
    where
        F: FnOnce(&mut Query<P>, StreamRef<T, P::Meta>) + 'static,
    {
        self.terminal(name, "physical", f);
    }

    /// Registers a terminal lowering thunk: records the terminal node in the
    /// logical graph, then seals the stream and hands it to `f` at lowering time.
    fn terminal<F>(self, name: &str, label: &'static str, f: F)
    where
        F: FnOnce(&mut Query<P>, StreamRef<T, P::Meta>) + 'static,
    {
        let node = add_node(&self.shared, name, label, 0);
        connect(&self.shared, self.node, node);
        let build = self.build;
        self.shared.borrow_mut().sinks.push(Box::new(move |q| {
            let stream = build(q).seal(q);
            f(q, stream);
        }));
    }
}

impl<P: ProvenanceSystem, T: TupleData> std::fmt::Debug for LogicalStream<P, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogicalStream")
            .field("node", &self.node)
            .field("name", &self.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::source::VecSource;
    use crate::provenance::NoProvenance;
    use crate::query::{NodeKind, QueryConfig};

    type Reading = (u32, i64);

    fn readings(n: u32) -> Vec<Reading> {
        (0..n).map(|i| (i % 4, i as i64)).collect()
    }

    fn spec() -> WindowSpec {
        WindowSpec::tumbling(Duration::from_secs(8)).unwrap()
    }

    fn count_window(w: &WindowView<'_, u32, Reading, ()>) -> Reading {
        (*w.key, w.len() as i64)
    }

    #[test]
    fn linear_plan_lowers_and_runs() {
        let plan = LogicalPlan::new(NoProvenance);
        let out = plan
            .source(
                "numbers",
                VecSource::with_period((0..10i64).collect(), 1_000),
            )
            .filter("evens", |x: &i64| x % 2 == 0)
            .map_one("double", |x: &i64| x * 2)
            .collecting_sink("sink");
        let report = plan.deploy().unwrap().wait().unwrap();
        let values: Vec<i64> = out.tuples().iter().map(|t| t.data).collect();
        assert_eq!(values, vec![0, 4, 8, 12, 16]);
        // Fusion is on by default: filter+map collapse into one physical operator
        // whose report still names the original stages.
        let chain = report.operator("evens+double").expect("fused chain");
        assert_eq!(chain.kind, NodeKind::Fused);
        assert_eq!(report.fused_stage("evens").unwrap().tuples_out, 5);
        assert_eq!(report.fused_stage("double").unwrap().tuples_in, 5);
    }

    #[test]
    fn fusion_off_keeps_thread_per_operator() {
        let plan =
            LogicalPlan::with_config(NoProvenance, PlannerConfig::default().with_fusion(false));
        let out = plan
            .source(
                "numbers",
                VecSource::with_period((0..10i64).collect(), 1_000),
            )
            .filter("evens", |x: &i64| x % 2 == 0)
            .map_one("double", |x: &i64| x * 2)
            .collecting_sink("sink");
        let report = plan.deploy().unwrap().wait().unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(report.operator_stats().len(), 4);
        assert!(report.operator("evens").is_some());
        assert!(report.operator("evens+double").is_none());
    }

    #[test]
    fn unannotated_aggregate_lowers_to_plain_operator() {
        let plan = LogicalPlan::new(NoProvenance);
        let out = plan
            .source("src", VecSource::with_period(readings(32), 1_000))
            .aggregate(
                "count",
                spec(),
                |r: &Reading| r.0,
                count_window,
                |o: &Reading| o.0,
            )
            .collecting_sink("sink");
        let q = plan.lower().unwrap();
        // No exchange, no fan-in: the planner elided the sharding machinery.
        let kinds: Vec<NodeKind> = q.node_summaries().iter().map(|(_, k)| *k).collect();
        assert!(kinds.contains(&NodeKind::Aggregate));
        assert!(!kinds.contains(&NodeKind::Partition));
        assert!(!kinds.contains(&NodeKind::ShardMerge));
        q.deploy().unwrap().wait().unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn parallelism_annotation_lowers_to_shard_group() {
        let plan = LogicalPlan::new(NoProvenance);
        let out = plan
            .source("src", VecSource::with_period(readings(32), 1_000))
            .aggregate(
                "count",
                spec(),
                |r: &Reading| r.0,
                count_window,
                |o: &Reading| o.0,
            )
            .with(Parallelism::shards(4))
            .collecting_sink("sink");
        let q = plan.lower().unwrap();
        let kinds: Vec<NodeKind> = q.node_summaries().iter().map(|(_, k)| *k).collect();
        assert!(kinds.contains(&NodeKind::Partition));
        assert!(kinds.contains(&NodeKind::ShardMerge));
        let report = q.deploy().unwrap().wait().unwrap();
        assert!(!out.is_empty());
        assert_eq!(report.operator("count").unwrap().instances, 4);
    }

    #[test]
    fn planner_default_parallelism_applies_without_annotations() {
        let plan =
            LogicalPlan::with_config(NoProvenance, PlannerConfig::default().with_parallelism(3));
        let _out = plan
            .source("src", VecSource::with_period(readings(24), 1_000))
            .aggregate(
                "count",
                spec(),
                |r: &Reading| r.0,
                count_window,
                |o: &Reading| o.0,
            )
            .collecting_sink("sink");
        let report = plan.deploy().unwrap().wait().unwrap();
        assert_eq!(report.operator("count").unwrap().instances, 3);
    }

    #[test]
    fn shard_region_keeps_stateless_stages_per_shard() {
        // aggregate ×4 → filter → keyed map: both stateless stages stay inside the
        // shard region (per-shard instances, fused per shard), and the single merge
        // sits after the map.
        let plan = LogicalPlan::new(NoProvenance);
        let out = plan
            .source("src", VecSource::with_period(readings(64), 1_000))
            .aggregate(
                "count",
                spec(),
                |r: &Reading| r.0,
                count_window,
                |o: &Reading| o.0,
            )
            .with(Parallelism::shards(4))
            .filter("busy", |c: &Reading| c.1 > 0)
            .map_one("scale", |c: &Reading| (c.0, c.1 * 10))
            .keyed(|c: &Reading| c.0)
            .collecting_sink("sink");
        let q = plan.lower().unwrap();
        let merges = q
            .node_summaries()
            .iter()
            .filter(|(_, k)| *k == NodeKind::ShardMerge)
            .count();
        assert_eq!(merges, 1, "exactly one fan-in, after the mapped stages");
        let report = q.deploy().unwrap().wait().unwrap();
        assert!(!out.is_empty());
        assert!(out.tuples().iter().all(|t| t.data.1 >= 10));
        // The per-shard stateless stages fused into one chain per shard.
        let chain = report.operator("busy+scale").expect("fused shard chain");
        assert_eq!(chain.instances, 4);
    }

    #[test]
    fn unkeyed_map_seals_the_shard_region_first() {
        let plan = LogicalPlan::new(NoProvenance);
        let _out = plan
            .source("src", VecSource::with_period(readings(64), 1_000))
            .aggregate(
                "count",
                spec(),
                |r: &Reading| r.0,
                count_window,
                |o: &Reading| o.0,
            )
            .with(Parallelism::shards(4))
            .map_one("describe", |c: &Reading| format!("{c:?}"))
            .collecting_sink("sink");
        let q = plan.lower().unwrap();
        // The merge precedes the map: the map node consumes the merge output.
        let summaries = q.node_summaries();
        let merge = summaries
            .iter()
            .position(|(_, k)| *k == NodeKind::ShardMerge)
            .expect("merge exists");
        let map = summaries
            .iter()
            .position(|(n, _)| n == "describe")
            .expect("map exists");
        assert!(q.edges().contains(&(merge, map)));
        q.deploy().unwrap().wait().unwrap();
    }

    #[test]
    fn multiplex_union_round_trip() {
        let plan = LogicalPlan::new(NoProvenance);
        let branches = plan
            .source("numbers", VecSource::with_period((0..20i64).collect(), 500))
            .multiplex("mux", 2);
        let mut it = branches.into_iter();
        let small = it.next().unwrap().filter("small", |x: &i64| *x < 5);
        let large = it.next().unwrap().filter("large", |x: &i64| *x >= 15);
        let out = LogicalStream::union("union", vec![small, large]).collecting_sink("sink");
        plan.deploy().unwrap().wait().unwrap();
        let values: Vec<i64> = out.tuples().iter().map(|t| t.data).collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4, 15, 16, 17, 18, 19]);
    }

    #[test]
    fn join_lowers_plain_and_sharded() {
        let run = |shards: usize| {
            let plan = LogicalPlan::new(NoProvenance);
            let left = plan.source("left", VecSource::with_period(readings(16), 1_000));
            let right = plan.source(
                "right",
                VecSource::with_period(
                    (0..16u32).map(|i| (i % 4, 100 + i as i64)).collect(),
                    1_000,
                ),
            );
            let out = left
                .join(
                    "match",
                    right,
                    Duration::from_secs(2),
                    |l: &Reading| l.0,
                    |r: &Reading| r.0,
                    |o: &(u32, i64, i64)| o.0,
                    |l: &Reading, r: &Reading| l.0 == r.0,
                    |l: &Reading, r: &Reading| (l.0, l.1, r.1),
                )
                .with(Parallelism::shards(shards))
                .collecting_sink("sink");
            let report = plan.deploy().unwrap().wait().unwrap();
            let tuples: Vec<(u64, (u32, i64, i64))> = out
                .tuples()
                .iter()
                .map(|t| (t.ts.as_millis(), t.data))
                .collect();
            (report, tuples)
        };
        let (plain_report, plain) = run(1);
        let (sharded_report, sharded) = run(3);
        assert!(!plain.is_empty());
        assert_eq!(plain, sharded, "shard count must not change join output");
        assert!(plain_report.operator("match").is_some());
        assert_eq!(sharded_report.operator("match").unwrap().instances, 3);
    }

    #[test]
    fn unconsumed_stream_is_rejected_at_lower() {
        let plan = LogicalPlan::new(NoProvenance);
        let s = plan.source("numbers", VecSource::with_period(vec![1i64], 1));
        let _dangling = s.filter("dangling", |_: &i64| true);
        // A sink exists on another branch so the no-sink check doesn't trip first.
        plan.source("other", VecSource::with_period(vec![2i64], 1))
            .collecting_sink("sink");
        let err = plan.lower().unwrap_err();
        assert!(
            matches!(err, SpeError::InvalidQuery(msg) if msg.contains("dangling")),
            "unconsumed stream must name the offending node"
        );
    }

    #[test]
    fn stray_annotations_are_rejected_at_lower() {
        // `.with(..)` on a filter: no lowering rule consumes it.
        let plan = LogicalPlan::new(NoProvenance);
        let _out = plan
            .source("src", VecSource::with_period(readings(8), 1_000))
            .filter("keep", |r: &Reading| r.1 >= 0)
            .with(Parallelism::shards(4))
            .collecting_sink("sink");
        let err = plan.lower().unwrap_err();
        assert!(
            matches!(err, SpeError::InvalidQuery(ref msg) if msg.contains(".with") && msg.contains("keep")),
            "stray .with must name the node: {err:?}"
        );

        // `.keyed(..)` on an aggregate (it belongs on a map): rejected too.
        let plan = LogicalPlan::new(NoProvenance);
        let _out = plan
            .source("src", VecSource::with_period(readings(8), 1_000))
            .aggregate(
                "count",
                spec(),
                |r: &Reading| r.0,
                count_window,
                |o: &Reading| o.0,
            )
            .keyed(|o: &Reading| o.0)
            .collecting_sink("sink");
        let err = plan.lower().unwrap_err();
        assert!(
            matches!(err, SpeError::InvalidQuery(ref msg) if msg.contains(".keyed") && msg.contains("count")),
            "stray .keyed must name the node: {err:?}"
        );

        // A `.keyed(..)` on a map that ends up *outside* any shard region is a
        // contingent hint, not an error: the planner consumed and dropped it.
        let plan = LogicalPlan::new(NoProvenance);
        let out = plan
            .source("src", VecSource::with_period(readings(8), 1_000))
            .map_one("scale", |r: &Reading| (r.0, r.1 * 2))
            .keyed(|r: &Reading| r.0)
            .collecting_sink("sink");
        plan.deploy().unwrap().wait().unwrap();
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn empty_plan_is_invalid() {
        let plan = LogicalPlan::new(NoProvenance);
        assert!(matches!(plan.lower(), Err(SpeError::InvalidQuery(_))));
    }

    #[test]
    fn discard_satisfies_consumption() {
        let plan = LogicalPlan::new(NoProvenance);
        let branches = plan
            .source("numbers", VecSource::with_period(vec![1i64, 2, 3], 1))
            .multiplex("mux", 2);
        let mut it = branches.into_iter();
        let out = it.next().unwrap().collecting_sink("sink");
        it.next().unwrap().discard();
        plan.deploy().unwrap().wait().unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn logical_dot_renders_annotations() {
        let plan = LogicalPlan::new(NoProvenance);
        let _out = plan
            .source("src", VecSource::with_period(readings(8), 1_000))
            .aggregate(
                "count",
                spec(),
                |r: &Reading| r.0,
                count_window,
                |o: &Reading| o.0,
            )
            .with(Parallelism::shards(4))
            .collecting_sink("sink");
        let dot = plan.to_dot();
        assert!(dot.contains("digraph logical"));
        assert!(dot.contains("count\\n(aggregate \u{d7}4)"));
        assert!(dot.contains("l0 -> l1"));
        // Terminal operators are part of the declared graph too.
        assert!(dot.contains("sink\\n(sink)"));
        assert!(dot.contains("l1 -> l2"));
        // The logical view has no exchange/merge nodes — those are planner output.
        assert!(!dot.contains("partition"));
        assert!(!dot.contains("merge"));
    }

    #[test]
    fn explicit_placements_override_with_in_the_logical_dot() {
        let plan = LogicalPlan::new(NoProvenance);
        let _out = plan
            .source("src", VecSource::with_period(readings(8), 1_000))
            .aggregate(
                "count",
                spec(),
                |r: &Reading| r.0,
                count_window,
                |o: &Reading| o.0,
            )
            .with(Parallelism::shards(4))
            .place(ShardPlacement::<NoProvenance, Reading, Reading>::all_local(
                2,
            ))
            .collecting_sink("sink");
        let dot = plan.to_dot();
        // `.place` wins at lowering; the rendered shard count says the same.
        assert!(dot.contains("count\\n(aggregate \u{d7}2)"));
        assert!(!dot.contains("\u{d7}4"));
        // The plan still lowers: the `.with` hint was superseded, not stranded.
        plan.deploy().unwrap().wait().unwrap();
    }

    #[test]
    fn lowered_query_config_follows_planner_config() {
        let plan = LogicalPlan::with_config(
            NoProvenance,
            PlannerConfig::default()
                .with_batch_size(16)
                .with_channel_capacity(256),
        );
        let _out = plan
            .source("src", VecSource::with_period(vec![1i64], 1))
            .collecting_sink("sink");
        let q = plan.lower().unwrap();
        let qc: QueryConfig = q.config();
        assert_eq!(qc.batch.size, 16);
        assert_eq!(qc.channel_capacity, 256);
        assert!(qc.fusion, "planner default turns fusion on");
    }

    #[test]
    fn sink_stats_handle_is_populated_after_run() {
        let plan = LogicalPlan::new(NoProvenance);
        let stats = plan
            .source("numbers", VecSource::with_period((0..5i64).collect(), 100))
            .sink("sink", |_| {});
        plan.deploy().unwrap().wait().unwrap();
        assert_eq!(stats.tuple_count(), 5);
    }
}
