//! The thread-per-operator runtime.
//!
//! Each operator of a deployed query runs on its own OS thread (the model of the
//! paper's SPE instances: threads sharing a process, communicating through queues).
//! [`QueryHandle`] joins the threads and aggregates their statistics into a
//! [`QueryReport`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use genealog_metrics::{HistogramSnapshot, MetricsRegistry, Tracer};

use crate::error::SpeError;
use crate::fusion::StageInfo;
use crate::operator::{Operator, OperatorStats};
use crate::query::{NodeKind, ShardGroup};

/// Statistics of one operator after query completion, tagged with its role.
///
/// For key-partitioned operators the report covers the whole shard group: the runtime
/// folds the per-shard thread statistics into one report carrying the group name and
/// the number of instances. For a fused chain the report covers the whole chain
/// thread, and [`OperatorReport::stages`] still names the original operators with
/// their individual counters.
#[derive(Debug, Clone)]
pub struct OperatorReport {
    /// The operator's role in the query graph.
    pub kind: NodeKind,
    /// Number of parallel shard instances folded into this report (1 for ordinary
    /// operators).
    pub instances: usize,
    /// The operator's run-time counters (summed over all shard instances).
    pub stats: OperatorStats,
    /// Per-stage counters of the original operators folded into a fused chain, in
    /// stage order (summed over shard instances for sharded chains); empty for
    /// ordinary, unfused operators.
    pub stages: Vec<OperatorStats>,
    /// Final sink-latency histogram (`genealog_sink_latency_ns`), taken from the
    /// query's metrics registry when the run finishes. `None` for non-sink
    /// operators and for queries run with metrics disabled.
    pub latency: Option<HistogramSnapshot>,
}

/// Aggregated result of a completed query run.
#[derive(Debug, Clone)]
pub struct QueryReport {
    operators: Vec<OperatorReport>,
    wall_time: std::time::Duration,
}

impl QueryReport {
    /// Per-operator statistics in node-creation order.
    pub fn operator_stats(&self) -> &[OperatorReport] {
        &self.operators
    }

    /// Total wall-clock time between deployment and the last operator finishing.
    pub fn wall_time(&self) -> std::time::Duration {
        self.wall_time
    }

    /// Total number of tuples injected by all Sources.
    pub fn source_tuples(&self) -> u64 {
        self.operators
            .iter()
            .filter(|o| o.kind == NodeKind::Source)
            .map(|o| o.stats.tuples_out)
            .sum()
    }

    /// Total number of tuples received by all Sinks.
    pub fn sink_tuples(&self) -> u64 {
        self.operators
            .iter()
            .filter(|o| o.kind == NodeKind::Sink)
            .map(|o| o.stats.tuples_in)
            .sum()
    }

    /// Source throughput in tuples per second over the whole run.
    pub fn source_throughput(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.source_tuples() as f64 / secs
    }

    /// Statistics of the operator with the given name, if present.
    pub fn operator(&self, name: &str) -> Option<&OperatorReport> {
        self.operators.iter().find(|o| o.stats.name == name)
    }

    /// Statistics of one original operator folded into a fused chain, if present.
    ///
    /// Fused chains report as one [`OperatorReport`] named after the whole chain;
    /// this accessor finds an individual stage by its original operator name.
    pub fn fused_stage(&self, name: &str) -> Option<&OperatorStats> {
        self.operators
            .iter()
            .flat_map(|o| o.stages.iter())
            .find(|s| s.name == name)
    }

    /// Renders a per-operator text table of the report.
    ///
    /// Fused chains list the per-stage counters of their original operators
    /// ([`OperatorReport::stages`]) as indented rows, so a report printed with
    /// fusion on loses no telemetry compared to the thread-per-operator plan.
    pub fn render_operators(&self) -> String {
        let mut out = String::new();
        for op in &self.operators {
            let instances = if op.instances > 1 {
                format!(" \u{d7}{}", op.instances)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{:<28} {:>10} in {:>10} out  ({}{})\n",
                op.stats.name,
                op.stats.tuples_in,
                op.stats.tuples_out,
                op.kind.label(),
                instances
            ));
            for stage in &op.stages {
                out.push_str(&format!(
                    "  \u{21b3} {:<24} {:>10} in {:>10} out\n",
                    stage.name, stage.tuples_in, stage.tuples_out
                ));
            }
        }
        out
    }

    /// Folds the per-instance reports of a distributed deployment into one report.
    ///
    /// Operators sharing a name across instances are shard instances of the same
    /// logical operator (the shard-group deployment helpers name every remote
    /// instance's operators identically): their counters are summed and their
    /// `instances` counts added, so a shard group spanning SPE instances reports
    /// exactly like a local shard group — one [`OperatorReport`] with an `instances`
    /// count. Operators unique to one instance pass through unchanged, in the order
    /// the reports were given; the wall time is the maximum over the instances
    /// (they run concurrently).
    pub fn merge_distributed<I: IntoIterator<Item = QueryReport>>(reports: I) -> QueryReport {
        let mut operators: Vec<OperatorReport> = Vec::new();
        let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut wall_time = std::time::Duration::ZERO;
        for report in reports {
            wall_time = wall_time.max(report.wall_time);
            for op in report.operators {
                match index.get(&op.stats.name) {
                    Some(&i) => {
                        operators[i].stats.absorb(&op.stats);
                        operators[i].instances += op.instances;
                        match (&mut operators[i].latency, op.latency) {
                            (Some(merged), Some(latency)) => merged.merge(&latency),
                            (slot @ None, Some(latency)) => *slot = Some(latency),
                            _ => {}
                        }
                        // Same-named operators across instances have identical stage
                        // structure (if any); fold per-stage counters positionally.
                        let existing = &mut operators[i].stages;
                        if existing.len() == op.stages.len() {
                            for (merged, stage) in existing.iter_mut().zip(&op.stages) {
                                merged.absorb(stage);
                            }
                        } else if existing.is_empty() {
                            *existing = op.stages;
                        }
                    }
                    None => {
                        index.insert(op.stats.name.clone(), operators.len());
                        operators.push(op);
                    }
                }
            }
        }
        QueryReport {
            operators,
            wall_time,
        }
    }

    /// Assembles a report directly from its parts. Exposed for tests exercising
    /// [`QueryReport::merge_distributed`] with hand-built per-instance reports;
    /// not part of the stable API.
    #[doc(hidden)]
    pub fn from_parts(operators: Vec<OperatorReport>, wall_time: std::time::Duration) -> Self {
        QueryReport {
            operators,
            wall_time,
        }
    }
}

/// What the runtime spawns for one physical operator: the boxed run loop plus the
/// reporting metadata (node kind, shard group, and — for fused chains — the stage
/// handles naming the original operators).
pub(crate) struct OperatorSpec {
    pub(crate) kind: NodeKind,
    pub(crate) group: Option<ShardGroup>,
    pub(crate) stages: Vec<StageInfo>,
    pub(crate) op: Box<dyn Operator>,
}

/// A joinable operator thread, tagged with its node kind, name, shard group and
/// fused-stage reporting handles.
type OperatorThread = (
    NodeKind,
    String,
    Option<ShardGroup>,
    Vec<StageInfo>,
    JoinHandle<Result<OperatorStats, SpeError>>,
);

/// A running query: one thread per operator.
#[derive(Debug)]
pub struct QueryHandle {
    threads: Vec<OperatorThread>,
    stop: Arc<AtomicBool>,
    started: Instant,
    registry: Arc<MetricsRegistry>,
    running: Arc<AtomicUsize>,
}

/// A cheap, cloneable probe answering whether a deployed query's operator threads
/// have all finished (successfully, with an error, or by panicking).
///
/// Obtained from [`QueryHandle::completion`] for watchers that must not consume
/// the handle. The distributed metrics shipper is the motivating case: it holds a
/// sender clone of the remote instance's physical return link, and the origin
/// detects a dead remote engine by that link closing — so the shipper has to tie
/// its own lifetime to the engine's instead of waiting to be told to stop.
#[derive(Clone, Debug)]
pub struct QueryCompletion {
    running: Arc<AtomicUsize>,
}

impl QueryCompletion {
    /// Whether every operator thread of the query has exited.
    pub fn is_finished(&self) -> bool {
        self.running.load(Ordering::Acquire) == 0
    }
}

impl QueryHandle {
    /// A probe for the query's completion that does not consume the handle.
    pub fn completion(&self) -> QueryCompletion {
        QueryCompletion {
            running: Arc::clone(&self.running),
        }
    }

    /// Asks every Source of the query to stop injecting tuples; the query then drains
    /// and terminates on its own.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether the stop flag has been raised.
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// The live metrics registry of the running query (the same registry
    /// [`Query::registry`](crate::query::Query::registry) returned before
    /// deployment).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Waits for every operator to finish and returns the aggregated report.
    ///
    /// # Errors
    /// Returns the first operator error encountered, or
    /// [`SpeError::OperatorPanicked`] if an operator thread panicked.
    pub fn wait(self) -> Result<QueryReport, SpeError> {
        let registry = Arc::clone(&self.registry);
        let mut operators: Vec<OperatorReport> = Vec::with_capacity(self.threads.len());
        // Shard group name -> index into `operators`, so every shard thread of one
        // logical operator folds into a single aggregated report.
        let mut group_index: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        let mut first_error: Option<SpeError> = None;
        for (kind, name, group, stages, handle) in self.threads {
            match handle.join() {
                Ok(Ok(stats)) => {
                    // The thread has finished, so the fused-stage counters are final.
                    let stage_stats: Vec<OperatorStats> =
                        stages.iter().map(StageInfo::snapshot).collect();
                    match group {
                        Some(group) => match group_index.get(&group.name) {
                            Some(&idx) => {
                                operators[idx].stats.absorb(&stats);
                                // Count the threads actually folded in, not the group's
                                // declared width: single-node groups (the partition and
                                // fan-in of an exchange carry a group for DOT labelling)
                                // report instances = 1.
                                operators[idx].instances += 1;
                                // Sibling shard chains have identical stage structure;
                                // fold their per-stage counters positionally.
                                let existing = &mut operators[idx].stages;
                                if existing.len() == stage_stats.len() {
                                    for (merged, stage) in existing.iter_mut().zip(&stage_stats) {
                                        merged.absorb(stage);
                                    }
                                } else if existing.is_empty() {
                                    *existing = stage_stats;
                                }
                            }
                            None => {
                                group_index.insert(group.name.clone(), operators.len());
                                let mut merged = OperatorStats::new(group.name);
                                merged.absorb(&stats);
                                operators.push(OperatorReport {
                                    kind,
                                    instances: 1,
                                    stats: merged,
                                    stages: stage_stats,
                                    latency: None,
                                });
                            }
                        },
                        None => operators.push(OperatorReport {
                            kind,
                            instances: 1,
                            stats,
                            stages: stage_stats,
                            latency: None,
                        }),
                    }
                }
                Ok(Err(err)) => {
                    if first_error.is_none() {
                        first_error = Some(err);
                    }
                }
                Err(_) => {
                    if first_error.is_none() {
                        first_error = Some(SpeError::OperatorPanicked { operator: name });
                    }
                }
            }
        }
        if let Some(err) = first_error {
            return Err(err);
        }
        // The threads are joined, so the registry's sink-latency histograms are
        // final: attach each operator's snapshot (sinks only, in practice).
        for op in &mut operators {
            op.latency = registry
                .histogram_snapshot("genealog_sink_latency_ns", &[("operator", &op.stats.name)])
                .filter(|snapshot| !snapshot.is_empty());
        }
        Ok(QueryReport {
            operators,
            wall_time: self.started.elapsed(),
        })
    }
}

/// Spawns the operator threads of a validated query.
pub(crate) struct Runtime;

impl Runtime {
    pub(crate) fn spawn(
        operators: Vec<OperatorSpec>,
        stop: Arc<AtomicBool>,
        checkpoints: crate::state::CheckpointHandle,
        registry: Arc<MetricsRegistry>,
    ) -> QueryHandle {
        let started = Instant::now();
        let running = Arc::new(AtomicUsize::new(operators.len()));
        let threads = operators
            .into_iter()
            .map(|spec| {
                let OperatorSpec {
                    kind,
                    group,
                    stages,
                    op,
                } = spec;
                let name = op.name().to_string();
                let thread_name = format!("spe-{name}");
                let stop_on_panic = Arc::clone(&stop);
                let checkpoints = Arc::clone(&checkpoints);
                let running = Arc::clone(&running);
                let panic_name = name.clone();
                let handle = std::thread::Builder::new()
                    .name(thread_name)
                    .spawn(move || {
                        Tracer::global().emit("operator-start", panic_name.clone(), "spawned");
                        // A panicking operator must not leave the query wedged:
                        // catching the unwind lets us (1) raise the stop flag so
                        // rate-limited sources cease producing, and (2) turn the
                        // panic into a structured error naming the operator.
                        // Unwinding has already dropped the operator's channel
                        // endpoints, so peers drain out naturally: downstream sees
                        // end-of-stream, upstream sees a closed channel.
                        let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            move || op.run(),
                        )) {
                            Ok(result) => {
                                Tracer::global().emit(
                                    "operator-stop",
                                    panic_name.clone(),
                                    "finished",
                                );
                                result
                            }
                            Err(_) => {
                                stop_on_panic.store(true, Ordering::Relaxed);
                                Tracer::global().emit(
                                    "operator-panic",
                                    panic_name.clone(),
                                    "operator thread panicked; stop flag raised",
                                );
                                Err(SpeError::OperatorPanicked {
                                    operator: panic_name,
                                })
                            }
                        };
                        if result.is_err() {
                            // Keep post-failure commits from other threads out of
                            // the store, so no epoch influenced by the failure can
                            // reach completeness and become the restore point.
                            if let Some(config) = checkpoints.get() {
                                config.store.fence();
                            }
                        }
                        // Panics are already caught above, so this runs on every
                        // exit path and the completion probe cannot stay stuck.
                        running.fetch_sub(1, Ordering::Release);
                        result
                    })
                    .expect("failed to spawn operator thread");
                (kind, name, group, stages, handle)
            })
            .collect();
        QueryHandle {
            threads,
            stop,
            started,
            registry,
            running,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{OperatorReport, QueryReport};
    use crate::operator::source::{RateLimit, SourceConfig, VecSource};
    use crate::operator::OperatorStats;
    use crate::provenance::NoProvenance;
    use crate::query::{NodeKind, Query};

    fn op(name: &str, tuples_in: u64, tuples_out: u64, stages: &[(&str, u64)]) -> OperatorReport {
        let mut stats = OperatorStats::new(name.to_string());
        stats.tuples_in = tuples_in;
        stats.tuples_out = tuples_out;
        OperatorReport {
            kind: NodeKind::Aggregate,
            instances: 1,
            stats,
            stages: stages
                .iter()
                .map(|(stage, n)| {
                    let mut s = OperatorStats::new(stage.to_string());
                    s.tuples_in = *n;
                    s.tuples_out = *n;
                    s
                })
                .collect(),
            latency: None,
        }
    }

    #[test]
    fn merge_distributed_ignores_empty_instance_reports() {
        let ms = std::time::Duration::from_millis;
        let merged = QueryReport::merge_distributed([
            QueryReport::from_parts(vec![], ms(30)),
            QueryReport::from_parts(vec![op("agg", 7, 3, &[])], ms(10)),
            QueryReport::from_parts(vec![], ms(20)),
        ]);
        // Empty instances contribute no operators but still count into wall time
        // (the deployment waited on them).
        assert_eq!(merged.operator_stats().len(), 1);
        assert_eq!(merged.operator("agg").unwrap().stats.tuples_in, 7);
        assert_eq!(merged.operator("agg").unwrap().instances, 1);
        assert_eq!(merged.wall_time(), ms(30));
        // Degenerate but legal: merging nothing at all.
        let empty = QueryReport::merge_distributed([]);
        assert!(empty.operator_stats().is_empty());
        assert_eq!(empty.sink_tuples(), 0);
    }

    #[test]
    fn merge_distributed_folds_matching_stage_shapes_positionally() {
        let merged = QueryReport::merge_distributed([
            QueryReport::from_parts(
                vec![op("chain", 10, 4, &[("keep", 10), ("scale", 6)])],
                std::time::Duration::ZERO,
            ),
            QueryReport::from_parts(
                vec![op("chain", 20, 8, &[("keep", 20), ("scale", 12)])],
                std::time::Duration::ZERO,
            ),
        ]);
        let chain = merged.operator("chain").unwrap();
        assert_eq!(chain.instances, 2);
        assert_eq!(chain.stats.tuples_in, 30);
        assert_eq!(chain.stages.len(), 2);
        assert_eq!(merged.fused_stage("keep").unwrap().tuples_in, 30);
        assert_eq!(merged.fused_stage("scale").unwrap().tuples_in, 18);
    }

    #[test]
    fn merge_distributed_keeps_first_stages_on_mismatched_shapes() {
        // An instance reporting the chain unfused (no stages) merges its top-level
        // counters into whichever stage shape arrived first — in either order.
        let fused = || {
            QueryReport::from_parts(
                vec![op("chain", 5, 2, &[("keep", 5), ("scale", 3)])],
                std::time::Duration::ZERO,
            )
        };
        let unfused =
            || QueryReport::from_parts(vec![op("chain", 7, 3, &[])], std::time::Duration::ZERO);

        let merged = QueryReport::merge_distributed([fused(), unfused()]);
        let chain = merged.operator("chain").unwrap();
        assert_eq!(chain.stats.tuples_in, 12, "top-level counters always fold");
        assert_eq!(chain.stages.len(), 2, "the fused shape survives");
        assert_eq!(merged.fused_stage("keep").unwrap().tuples_in, 5);

        let merged = QueryReport::merge_distributed([unfused(), fused()]);
        let chain = merged.operator("chain").unwrap();
        assert_eq!(chain.stats.tuples_in, 12);
        assert_eq!(
            chain.stages.len(),
            2,
            "an empty shape adopts the later instance's stages"
        );

        // Genuinely different non-empty shapes: first shape wins, counters of the
        // conflicting stages are dropped rather than mis-attributed positionally.
        let other = QueryReport::from_parts(
            vec![op("chain", 9, 9, &[("resample", 9)])],
            std::time::Duration::ZERO,
        );
        let merged = QueryReport::merge_distributed([fused(), other]);
        let chain = merged.operator("chain").unwrap();
        assert_eq!(chain.stats.tuples_in, 14);
        assert_eq!(chain.stages.len(), 2);
        assert!(merged.fused_stage("resample").is_none());
        assert_eq!(merged.fused_stage("keep").unwrap().tuples_in, 5);
    }

    #[test]
    fn report_aggregates_source_and_sink_counts() {
        let mut q = Query::new(NoProvenance);
        let src = q.source("numbers", VecSource::with_period((0..100i64).collect(), 10));
        let kept = q.filter("keep-half", src, |x| x % 2 == 0);
        let _ = q.collecting_sink("sink", kept);
        let report = q.deploy().unwrap().wait().unwrap();
        assert_eq!(report.source_tuples(), 100);
        assert_eq!(report.sink_tuples(), 50);
        assert!(report.source_throughput() > 0.0);
        assert!(report.wall_time() > std::time::Duration::ZERO);
        assert!(report.operator("keep-half").is_some());
        assert_eq!(report.operator("keep-half").unwrap().stats.tuples_out, 50);
        assert!(report.operator("missing").is_none());
    }

    #[test]
    fn rendered_report_lists_fused_stage_counters() {
        use crate::query::QueryConfig;
        let mut q = Query::with_config(NoProvenance, QueryConfig::default().with_fusion(true));
        let src = q.source("numbers", VecSource::with_period((0..10i64).collect(), 10));
        let evens = q.filter("evens", src, |x| x % 2 == 0);
        let doubled = q.map_one("double", evens, |x| x * 2);
        let _ = q.collecting_sink("sink", doubled);
        let report = q.deploy().unwrap().wait().unwrap();
        let rendered = report.render_operators();
        // The chain row names the fused thread; the indented rows keep the
        // original operators' counters visible.
        assert!(rendered.contains("evens+double"));
        assert!(rendered.contains("\u{21b3} evens"));
        assert!(rendered.contains("\u{21b3} double"));
        assert!(rendered.contains("(fused)"));
    }

    #[test]
    fn stop_flag_terminates_a_rate_limited_query_early() {
        let mut q = Query::new(NoProvenance);
        let src = q.source_with(
            "slow",
            VecSource::with_period((0..1_000_000i64).collect(), 1),
            SourceConfig {
                rate: RateLimit::TuplesPerSecond(10_000),
                watermark_every: 1,
            },
        );
        let _ = q.collecting_sink("sink", src);
        let handle = q.deploy().unwrap();
        assert!(!handle.is_stopping());
        std::thread::sleep(std::time::Duration::from_millis(50));
        handle.stop();
        assert!(handle.is_stopping());
        let report = handle.wait().unwrap();
        assert!(report.source_tuples() < 1_000_000);
    }
}
