//! Sliding time windows and the group-by window store used by the Aggregate operator.
//!
//! Windows follow the paper's Aggregate semantics: a sliding time window of size `WS`
//! and advance `WA`, optionally partitioned by a group-by key. Window instances are
//! aligned to multiples of the advance; a tuple with timestamp `ts` belongs to every
//! window `[start, start + WS)` with `start ≡ 0 (mod WA)` and `start ≤ ts < start + WS`.
//! A window is *closed* (its aggregate emitted) once the event-time watermark reaches
//! `start + WS`; the output tuple carries the window start as its timestamp, matching
//! the example of Figure 1 (output `08:00:00` for the window covering
//! `08:00:00–08:02:00`).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::SpeError;
use crate::time::{Duration, Timestamp};
use crate::tuple::GTuple;

/// Size and advance of a sliding time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    /// Window size (`WS`).
    pub size: Duration,
    /// Window advance (`WA`).
    pub advance: Duration,
}

impl WindowSpec {
    /// Creates a window specification.
    ///
    /// # Errors
    /// Returns [`SpeError::InvalidQuery`] if the size or the advance is zero, or if
    /// the advance is larger than the size (which would drop tuples between windows).
    pub fn new(size: Duration, advance: Duration) -> Result<Self, SpeError> {
        if size.is_zero() {
            return Err(SpeError::InvalidQuery(
                "window size must be positive".into(),
            ));
        }
        if advance.is_zero() {
            return Err(SpeError::InvalidQuery(
                "window advance must be positive".into(),
            ));
        }
        if advance > size {
            return Err(SpeError::InvalidQuery(
                "window advance must not exceed the window size".into(),
            ));
        }
        Ok(WindowSpec { size, advance })
    }

    /// A *tumbling* window (advance equal to the size).
    ///
    /// # Errors
    /// Returns [`SpeError::InvalidQuery`] if the size is zero.
    pub fn tumbling(size: Duration) -> Result<Self, SpeError> {
        Self::new(size, size)
    }

    /// The window starts a tuple with timestamp `ts` belongs to, in increasing order.
    pub fn window_starts(&self, ts: Timestamp) -> Vec<Timestamp> {
        let mut starts =
            Vec::with_capacity((self.size.as_millis() / self.advance.as_millis()) as usize + 1);
        let mut start = ts.align_down(self.advance);
        loop {
            // Window [start, start + size) contains ts.
            if start + self.size > ts {
                starts.push(start);
            } else {
                break;
            }
            if start == Timestamp::MIN {
                break;
            }
            start = start.saturating_sub(self.advance);
        }
        starts.reverse();
        starts
    }

    /// Number of windows a single tuple participates in.
    pub fn windows_per_tuple(&self) -> u64 {
        self.size.as_millis().div_ceil(self.advance.as_millis())
    }
}

/// A window instance that has been closed by watermark progress, ready for aggregation.
#[derive(Debug)]
pub struct ClosedWindow<K, T, M> {
    /// Start timestamp of the window (also the timestamp of the aggregate output).
    pub start: Timestamp,
    /// The group-by key of this window instance.
    pub key: K,
    /// The tuples assigned to the window, in timestamp order (earliest first).
    pub tuples: Vec<Arc<GTuple<T, M>>>,
}

/// The per-key tuple buffers of one window instance.
type WindowGroups<K, T, M> = BTreeMap<K, Vec<Arc<GTuple<T, M>>>>;

/// Callback that re-materialises one buffered tuple when restoring a snapshot,
/// detaching it from mutable provenance state owned by the run the snapshot was
/// taken from (see [`WindowStore::restore`]).
pub type DetachFn<'a, T, M> = dyn FnMut(&Arc<GTuple<T, M>>) -> Arc<GTuple<T, M>> + 'a;

/// A point-in-time copy of a [`WindowStore`], taken at an epoch barrier.
///
/// The snapshot shares the buffered tuple `Arc`s with the live store (cheap to take);
/// [`WindowStore::restore`] re-materialises them through a caller-supplied *detach*
/// clone so the restored store never aliases mutable metadata of the run the snapshot
/// was taken from (see
/// [`ProvenanceSystem::detach_meta`](crate::provenance::ProvenanceSystem::detach_meta)).
#[derive(Debug)]
pub struct WindowStoreSnapshot<K, T, M> {
    windows: BTreeMap<Timestamp, WindowGroups<K, T, M>>,
    late_tuples: u64,
    watermark: Timestamp,
}

impl<K, T, M> WindowStoreSnapshot<K, T, M> {
    /// Number of tuple references held by the snapshot.
    pub fn buffered_tuples(&self) -> usize {
        self.windows
            .values()
            .flat_map(|g| g.values())
            .map(Vec::len)
            .sum()
    }

    /// The watermark the store had reached when the snapshot was taken.
    pub fn watermark(&self) -> Timestamp {
        self.watermark
    }

    /// Number of tuples that had been dropped as late when the snapshot was taken.
    pub fn late_tuples(&self) -> u64 {
        self.late_tuples
    }

    /// Iterates the buffered window-instance buffers in deterministic order
    /// (window start ascending, then group key ascending). This is the byte-codec
    /// seam: a [`WindowPersister`](crate::persist::WindowPersister) walks these
    /// entries to produce a canonical encoding.
    pub fn entries(&self) -> impl Iterator<Item = (Timestamp, &K, &[Arc<GTuple<T, M>>])> {
        self.windows.iter().flat_map(|(start, groups)| {
            groups
                .iter()
                .map(move |(key, tuples)| (*start, key, tuples.as_slice()))
        })
    }
}

impl<K: Ord, T, M> WindowStoreSnapshot<K, T, M> {
    /// Rebuilds a snapshot from decoded parts — the inverse of
    /// [`entries`](WindowStoreSnapshot::entries). Entries with the same
    /// `(start, key)` overwrite; decoders produce each instance buffer once.
    pub fn from_parts<I>(entries: I, late_tuples: u64, watermark: Timestamp) -> Self
    where
        I: IntoIterator<Item = (Timestamp, K, Vec<Arc<GTuple<T, M>>>)>,
    {
        let mut windows: BTreeMap<Timestamp, WindowGroups<K, T, M>> = BTreeMap::new();
        for (start, key, tuples) in entries {
            windows.entry(start).or_default().insert(key, tuples);
        }
        WindowStoreSnapshot {
            windows,
            late_tuples,
            watermark,
        }
    }
}

/// Group-by sliding-window store: assigns tuples to window instances and releases the
/// instances closed by watermark progress, in deterministic order.
#[derive(Debug)]
pub struct WindowStore<K, T, M> {
    spec: WindowSpec,
    /// start -> key -> tuples. Both maps are ordered so closing windows is deterministic.
    windows: BTreeMap<Timestamp, WindowGroups<K, T, M>>,
    late_tuples: u64,
    watermark: Timestamp,
}

impl<K: Ord + Clone, T, M> WindowStore<K, T, M> {
    /// Creates an empty store for the given window specification.
    pub fn new(spec: WindowSpec) -> Self {
        WindowStore {
            spec,
            windows: BTreeMap::new(),
            late_tuples: 0,
            watermark: Timestamp::MIN,
        }
    }

    /// The window specification of the store.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Inserts a tuple under its group key into every window instance it belongs to.
    ///
    /// Tuples older than the current watermark are *late* under deterministic
    /// execution; they are counted and dropped.
    pub fn insert(&mut self, key: K, tuple: Arc<GTuple<T, M>>) {
        if tuple.ts < self.watermark {
            self.late_tuples += 1;
            return;
        }
        for start in self.spec.window_starts(tuple.ts) {
            // Skip window instances that were already closed by a previous watermark.
            if start + self.spec.size <= self.watermark {
                continue;
            }
            self.windows
                .entry(start)
                .or_default()
                .entry(key.clone())
                .or_default()
                .push(Arc::clone(&tuple));
        }
    }

    /// Advances the watermark and returns every window instance whose end is at or
    /// before it, ordered by window start and then by group key.
    pub fn close_up_to(&mut self, watermark: Timestamp) -> Vec<ClosedWindow<K, T, M>> {
        if watermark > self.watermark {
            self.watermark = watermark;
        }
        let mut closed = Vec::new();
        let expired: Vec<Timestamp> = self
            .windows
            .keys()
            .copied()
            .take_while(|&start| start + self.spec.size <= watermark)
            .collect();
        for start in expired {
            if let Some(groups) = self.windows.remove(&start) {
                for (key, tuples) in groups {
                    closed.push(ClosedWindow { start, key, tuples });
                }
            }
        }
        closed
    }

    /// Closes every remaining window instance (used at end-of-stream).
    pub fn close_all(&mut self) -> Vec<ClosedWindow<K, T, M>> {
        self.close_up_to(Timestamp::MAX)
    }

    /// Number of window instances currently open.
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    /// Number of tuples dropped because they arrived behind the watermark.
    pub fn late_tuples(&self) -> u64 {
        self.late_tuples
    }

    /// Number of tuples currently buffered across all open windows.
    pub fn buffered_tuples(&self) -> usize {
        self.windows
            .values()
            .flat_map(|g| g.values())
            .map(Vec::len)
            .sum()
    }

    /// Takes a point-in-time copy of the store (open windows, watermark, late-tuple
    /// count). Buffered tuples are shared by `Arc`, so this is cheap even for large
    /// windows.
    pub fn snapshot(&self) -> WindowStoreSnapshot<K, T, M> {
        WindowStoreSnapshot {
            windows: self.windows.clone(),
            late_tuples: self.late_tuples,
            watermark: self.watermark,
        }
    }

    /// Replaces the store's contents with a snapshot, re-materialising every buffered
    /// tuple through `detach`.
    ///
    /// `detach` must produce a fresh allocation whose mutable metadata is reset; it is
    /// called once per *occurrence* (a tuple buffered in several overlapping sliding
    /// windows is detached per window instance, which keeps each recovered window's
    /// provenance chain self-contained).
    pub fn restore(
        &mut self,
        snapshot: &WindowStoreSnapshot<K, T, M>,
        detach: &mut DetachFn<'_, T, M>,
    ) {
        self.windows = snapshot
            .windows
            .iter()
            .map(|(start, groups)| {
                let groups = groups
                    .iter()
                    .map(|(key, tuples)| (key.clone(), tuples.iter().map(&mut *detach).collect()))
                    .collect();
                (*start, groups)
            })
            .collect();
        self.late_tuples = snapshot.late_tuples;
        self.watermark = snapshot.watermark;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn tup(ts: u64, v: i64) -> Arc<GTuple<i64, ()>> {
        Arc::new(GTuple::new(secs(ts), 0, v, ()))
    }

    #[test]
    fn spec_validation() {
        assert!(WindowSpec::new(Duration::from_secs(10), Duration::from_secs(5)).is_ok());
        assert!(WindowSpec::new(Duration::ZERO, Duration::from_secs(5)).is_err());
        assert!(WindowSpec::new(Duration::from_secs(10), Duration::ZERO).is_err());
        assert!(WindowSpec::new(Duration::from_secs(5), Duration::from_secs(10)).is_err());
        let t = WindowSpec::tumbling(Duration::from_secs(30)).unwrap();
        assert_eq!(t.size, t.advance);
    }

    #[test]
    fn window_starts_for_linear_road_aggregate() {
        // WS = 120s, WA = 30s, as in query Q1.
        let spec = WindowSpec::new(Duration::from_secs(120), Duration::from_secs(30)).unwrap();
        assert_eq!(spec.windows_per_tuple(), 4);
        // Tuple at 08:00:01 (simplified to 1s from origin): windows starting at 0 only
        // (earlier starts would be negative).
        assert_eq!(spec.window_starts(secs(1)), vec![secs(0)]);
        // Tuple at 121s: windows starting at 30, 60, 90, 120.
        assert_eq!(
            spec.window_starts(secs(121)),
            vec![secs(30), secs(60), secs(90), secs(120)]
        );
        // Tuple exactly on a window boundary belongs to the window starting there.
        assert_eq!(
            spec.window_starts(secs(120)),
            vec![secs(30), secs(60), secs(90), secs(120)]
        );
    }

    #[test]
    fn tumbling_window_assigns_each_tuple_once() {
        let spec = WindowSpec::tumbling(Duration::from_secs(30)).unwrap();
        assert_eq!(spec.window_starts(secs(29)), vec![secs(0)]);
        assert_eq!(spec.window_starts(secs(30)), vec![secs(30)]);
        assert_eq!(spec.windows_per_tuple(), 1);
    }

    #[test]
    fn store_groups_by_key_and_closes_on_watermark() {
        let spec = WindowSpec::tumbling(Duration::from_secs(60)).unwrap();
        let mut store: WindowStore<&'static str, i64, ()> = WindowStore::new(spec);
        store.insert("a", tup(1, 10));
        store.insert("a", tup(31, 11));
        store.insert("b", tup(32, 20));
        store.insert("a", tup(61, 12)); // next window
        assert_eq!(store.open_windows(), 2);
        assert_eq!(store.buffered_tuples(), 4);

        // Watermark at 59: nothing closes yet.
        assert!(store.close_up_to(secs(59)).is_empty());
        // Watermark at 60: the [0, 60) window closes; groups in key order.
        let closed = store.close_up_to(secs(60));
        assert_eq!(closed.len(), 2);
        assert_eq!(closed[0].key, "a");
        assert_eq!(closed[0].tuples.len(), 2);
        assert_eq!(closed[0].start, secs(0));
        assert_eq!(closed[1].key, "b");
        assert_eq!(closed[1].tuples.len(), 1);
        // Remaining window closes with close_all.
        let rest = store.close_all();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].start, secs(60));
        assert_eq!(store.open_windows(), 0);
    }

    #[test]
    fn sliding_store_replicates_tuples_across_overlapping_windows() {
        let spec = WindowSpec::new(Duration::from_secs(120), Duration::from_secs(30)).unwrap();
        let mut store: WindowStore<u32, i64, ()> = WindowStore::new(spec);
        store.insert(1, tup(121, 1));
        // The tuple belongs to 4 windows.
        assert_eq!(store.open_windows(), 4);
        let closed = store.close_up_to(secs(30 + 120));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].start, secs(30));
    }

    #[test]
    fn late_tuples_are_counted_and_dropped() {
        let spec = WindowSpec::tumbling(Duration::from_secs(10)).unwrap();
        let mut store: WindowStore<u32, i64, ()> = WindowStore::new(spec);
        store.close_up_to(secs(100));
        store.insert(1, tup(5, 1));
        assert_eq!(store.late_tuples(), 1);
        assert_eq!(store.buffered_tuples(), 0);
    }

    #[test]
    fn tuple_not_added_to_already_closed_overlapping_windows() {
        let spec = WindowSpec::new(Duration::from_secs(120), Duration::from_secs(30)).unwrap();
        let mut store: WindowStore<u32, i64, ()> = WindowStore::new(spec);
        // Watermark at 150 closed windows starting at 0 and 30.
        store.close_up_to(secs(150));
        // A tuple at 170 belongs to windows 60, 90, 120, 150 — all still open.
        store.insert(1, tup(170, 1));
        assert_eq!(store.open_windows(), 4);
        // A tuple at 151 belongs to windows 60..150; window 60+120=180 > 150 so all open.
        store.insert(1, tup(151, 2));
        assert_eq!(store.open_windows(), 4);
    }

    #[test]
    fn closed_windows_preserve_insertion_order_within_group() {
        let spec = WindowSpec::tumbling(Duration::from_secs(100)).unwrap();
        let mut store: WindowStore<u32, i64, ()> = WindowStore::new(spec);
        for i in 0..10 {
            store.insert(7, tup(i, i as i64));
        }
        let closed = store.close_all();
        let values: Vec<i64> = closed[0].tuples.iter().map(|t| t.data).collect();
        assert_eq!(values, (0..10).collect::<Vec<i64>>());
    }
}
