//! The variable-length annotation carried by every tuple under the baseline.

use genealog_spe::tuple::TupleId;

/// Baseline per-tuple metadata: the list of source-tuple ids contributing to the tuple.
///
/// Unlike GeneaLog's fixed-size metadata, this annotation grows with the number of
/// contributing source tuples (e.g. ≈192 ids per sink tuple in the paper's Q3), which
/// is the per-tuple overhead the paper's challenge C1 rules out.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlMeta {
    /// Ids of the source tuples contributing to this tuple, in first-contribution order.
    pub contributors: Vec<TupleId>,
}

impl BlMeta {
    /// Annotation of a source tuple: contributes only itself.
    pub fn source(id: TupleId) -> Self {
        BlMeta {
            contributors: vec![id],
        }
    }

    /// Annotation of a tuple derived from a single input: the input's annotation.
    pub fn inherit(input: &BlMeta) -> Self {
        input.clone()
    }

    /// Annotation obtained by merging several inputs' annotations, de-duplicated while
    /// preserving first-occurrence order.
    pub fn merge<'a>(inputs: impl IntoIterator<Item = &'a BlMeta>) -> Self {
        let mut contributors = Vec::new();
        for meta in inputs {
            for id in &meta.contributors {
                if !contributors.contains(id) {
                    contributors.push(*id);
                }
            }
        }
        BlMeta { contributors }
    }

    /// Number of contributing source tuples recorded in the annotation.
    pub fn len(&self) -> usize {
        self.contributors.len()
    }

    /// True if the annotation is empty (never the case for instrumented tuples).
    pub fn is_empty(&self) -> bool {
        self.contributors.is_empty()
    }

    /// Approximate in-memory size of the annotation in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.contributors.len() * std::mem::size_of::<TupleId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64) -> TupleId {
        TupleId::new(0, seq)
    }

    #[test]
    fn source_annotation_contains_only_itself() {
        let m = BlMeta::source(id(5));
        assert_eq!(m.contributors, vec![id(5)]);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn inherit_clones_the_annotation() {
        let m = BlMeta::source(id(1));
        let inherited = BlMeta::inherit(&m);
        assert_eq!(inherited, m);
    }

    #[test]
    fn merge_deduplicates_and_preserves_order() {
        let a = BlMeta {
            contributors: vec![id(1), id(2)],
        };
        let b = BlMeta {
            contributors: vec![id(2), id(3)],
        };
        let merged = BlMeta::merge([&a, &b]);
        assert_eq!(merged.contributors, vec![id(1), id(2), id(3)]);
    }

    #[test]
    fn annotation_size_grows_with_contributors() {
        let small = BlMeta::source(id(0));
        let large = BlMeta {
            contributors: (0..192).map(id).collect(),
        };
        assert!(large.size_bytes() > small.size_bytes());
        assert!(large.size_bytes() >= 192 * std::mem::size_of::<TupleId>());
    }

    #[test]
    fn empty_default_annotation() {
        let m = BlMeta::default();
        assert!(m.is_empty());
        assert_eq!(BlMeta::merge(std::iter::empty::<&BlMeta>()).len(), 0);
    }
}
