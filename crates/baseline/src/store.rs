//! The source store: the baseline's retained copy of every source tuple.
//!
//! Annotation-based provenance must keep the source tuples around until the annotated
//! output tuples are joined back with them — in the worst case indefinitely, because a
//! source tuple can contribute to a future window for as long as the query runs. This
//! store is the embodiment of that cost: it grows with the input stream, which is what
//! makes the baseline collapse on memory-constrained edge devices (Figures 12–13).

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use genealog_spe::tuple::{TupleData, TupleId};
use genealog_spe::Timestamp;
use parking_lot::Mutex;

/// A retained source tuple.
#[derive(Debug, Clone)]
pub struct StoredSource {
    /// Timestamp of the source tuple.
    pub ts: Timestamp,
    /// Type-erased payload of the source tuple.
    pub data: Arc<dyn Any + Send + Sync>,
    /// Debug rendering of the payload (used for size estimates and reports).
    pub rendered: String,
}

impl StoredSource {
    /// Downcasts the stored payload to a concrete schema.
    pub fn payload<S: TupleData>(&self) -> Option<&S> {
        self.data.downcast_ref::<S>()
    }
}

/// Thread-safe store of every source tuple injected by the query's Sources.
#[derive(Debug, Default)]
pub struct SourceStore {
    inner: Mutex<HashMap<TupleId, StoredSource>>,
}

impl SourceStore {
    /// Creates an empty store.
    pub fn new() -> Arc<Self> {
        Arc::new(SourceStore::default())
    }

    /// Retains a source tuple.
    pub fn insert<S: TupleData>(&self, id: TupleId, ts: Timestamp, data: &S) {
        let stored = StoredSource {
            ts,
            data: Arc::new(data.clone()),
            rendered: format!("{data:?}"),
        };
        self.inner.lock().insert(id, stored);
    }

    /// Looks up a retained source tuple by id.
    pub fn get(&self, id: TupleId) -> Option<StoredSource> {
        self.inner.lock().get(&id).cloned()
    }

    /// Number of retained source tuples.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Approximate memory used by the retained tuples, in bytes.
    pub fn size_bytes(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .values()
            .map(|s| std::mem::size_of::<StoredSource>() + s.rendered.len())
            .sum::<usize>()
            + inner.len() * std::mem::size_of::<TupleId>()
    }

    /// Removes the retained tuples older than `watermark` (an optimisation some
    /// annotation-based systems apply when the query's maximum window span is known;
    /// kept here for the ablation benchmarks).
    pub fn evict_older_than(&self, watermark: Timestamp) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.len();
        inner.retain(|_, s| s.ts >= watermark);
        before - inner.len()
    }

    /// Clears the store.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup_round_trip() {
        let store = SourceStore::new();
        assert!(store.is_empty());
        store.insert(TupleId::new(0, 1), Timestamp::from_secs(10), &(7u32, 0u32));
        store.insert(TupleId::new(0, 2), Timestamp::from_secs(20), &(8u32, 5u32));
        assert_eq!(store.len(), 2);
        let s = store.get(TupleId::new(0, 1)).unwrap();
        assert_eq!(s.ts, Timestamp::from_secs(10));
        assert_eq!(s.payload::<(u32, u32)>(), Some(&(7, 0)));
        assert!(s.payload::<String>().is_none());
        assert!(store.get(TupleId::new(0, 99)).is_none());
    }

    #[test]
    fn store_size_grows_with_the_input() {
        let store = SourceStore::new();
        for i in 0..100 {
            store.insert(
                TupleId::new(0, i),
                Timestamp::from_secs(i),
                &(i as u32, 0u32),
            );
        }
        assert_eq!(store.len(), 100);
        assert!(store.size_bytes() > 100 * std::mem::size_of::<TupleId>());
    }

    #[test]
    fn eviction_and_clear() {
        let store = SourceStore::new();
        for i in 0..10 {
            store.insert(TupleId::new(0, i), Timestamp::from_secs(i * 10), &i);
        }
        let evicted = store.evict_older_than(Timestamp::from_secs(50));
        assert_eq!(evicted, 5);
        assert_eq!(store.len(), 5);
        store.clear();
        assert!(store.is_empty());
    }
}
