//! # genealog-baseline — the Ariadne-style annotation baseline ("BL")
//!
//! The GeneaLog paper compares against Ariadne (Glavic et al., *Efficient stream
//! provenance via operator instrumentation*, TOIT 2014), the state-of-the-art in eager
//! streaming provenance. Ariadne also instruments operators, but:
//!
//! * every tuple carries a **variable-length annotation** listing the ids of all the
//!   source tuples contributing to it (so the per-tuple overhead grows with the size
//!   of the contribution graph, violating the paper's challenge C1), and
//! * **all source tuples are retained** (in the [`store::SourceStore`]) so that the
//!   annotated sink tuples can later be joined back with the actual source payloads
//!   (violating challenge C2).
//!
//! This crate implements that technique behind the engine's
//! [`ProvenanceSystem`](genealog_spe::provenance::ProvenanceSystem) extension point so
//! the very same queries can be deployed under NP, GL and BL — exactly the comparison
//! of the evaluation's Figures 12 and 13.
//!
//! ```rust
//! use genealog_baseline::AriadneBaseline;
//! use genealog_spe::prelude::*;
//!
//! # fn main() -> Result<(), SpeError> {
//! let baseline = AriadneBaseline::new();
//! let mut q = Query::new(baseline.clone());
//! let src = q.source("numbers", VecSource::with_period(vec![1i64, 2, 3], 1_000));
//! let doubled = q.map_one("double", src, |v| v * 2);
//! let out = q.collecting_sink("sink", doubled);
//! q.deploy()?.wait()?;
//!
//! // Each sink tuple's annotation lists the contributing source-tuple ids,
//! // resolvable against the retained source store.
//! let collector = genealog_baseline::BaselineCollector::new(baseline);
//! let provenance = collector.resolve::<i64, i64>(&out.tuples()[0]);
//! assert_eq!(provenance.len(), 1);
//! assert_eq!(provenance[0].data, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod meta;
pub mod store;
pub mod system;

pub use meta::BlMeta;
pub use store::{SourceStore, StoredSource};
pub use system::{AriadneBaseline, BaselineCollector};
