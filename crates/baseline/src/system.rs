//! The baseline provenance system and the sink-side provenance reconstruction.

use std::sync::Arc;

use genealog_spe::provenance::{ProvenanceSystem, RemoteContext, SourceContext};
use genealog_spe::tuple::{GTuple, TupleData, TupleId};

use crate::meta::BlMeta;
use crate::store::{SourceStore, StoredSource};

/// The Ariadne-style baseline provenance system ("BL" in the evaluation).
///
/// Every instrumented operator copies/merges the variable-length annotations of its
/// inputs into its outputs; Sources additionally retain each source tuple in the
/// shared [`SourceStore`] so that sink-side reconstruction can recover the payloads.
#[derive(Debug, Clone, Default)]
pub struct AriadneBaseline {
    store: Arc<SourceStore>,
}

impl AriadneBaseline {
    /// Creates a baseline provenance system with an empty source store.
    pub fn new() -> Self {
        AriadneBaseline {
            store: SourceStore::new(),
        }
    }

    /// The store retaining every source tuple seen so far.
    pub fn store(&self) -> &Arc<SourceStore> {
        &self.store
    }
}

impl ProvenanceSystem for AriadneBaseline {
    type Meta = BlMeta;

    fn label(&self) -> &'static str {
        "BL"
    }

    fn source_meta<T: TupleData>(&self, ctx: &SourceContext, data: &T) -> BlMeta {
        let id = ctx.tuple_id();
        // The baseline must retain the source tuple itself: annotations only carry
        // ids, and the payloads are needed when provenance is materialised at the sink.
        self.store.insert(id, ctx.ts, data);
        BlMeta::source(id)
    }

    fn map_meta<I: TupleData>(&self, input: &Arc<GTuple<I, BlMeta>>) -> BlMeta {
        BlMeta::inherit(&input.meta)
    }

    fn multiplex_meta<I: TupleData>(&self, input: &Arc<GTuple<I, BlMeta>>) -> BlMeta {
        BlMeta::inherit(&input.meta)
    }

    fn join_meta<L: TupleData, R: TupleData>(
        &self,
        left: &Arc<GTuple<L, BlMeta>>,
        right: &Arc<GTuple<R, BlMeta>>,
    ) -> BlMeta {
        BlMeta::merge([&left.meta, &right.meta])
    }

    fn aggregate_meta<I: TupleData>(&self, window: &[Arc<GTuple<I, BlMeta>>]) -> BlMeta {
        BlMeta::merge(window.iter().map(|t| &t.meta))
    }

    fn remote_meta(&self, ctx: &RemoteContext) -> BlMeta {
        // Annotations crossing a process boundary are re-rooted at the remote tuple's
        // id; the distributed baseline additionally ships the whole source stream to
        // the provenance node (handled by the deployment, see `genealog-distributed`).
        BlMeta::source(ctx.id)
    }

    fn detach_meta(&self, meta: &BlMeta) -> BlMeta {
        // Baseline annotations are immutable id lists; a plain clone restores them.
        meta.clone()
    }
}

/// Reconstructs per-sink-tuple provenance from annotations plus the retained store.
#[derive(Debug, Clone)]
pub struct BaselineCollector {
    system: AriadneBaseline,
}

impl BaselineCollector {
    /// Creates a collector resolving annotations against the given baseline system.
    pub fn new(system: AriadneBaseline) -> Self {
        BaselineCollector { system }
    }

    /// Resolves the annotation of a sink tuple into the retained source tuples.
    ///
    /// Ids that are missing from the store (e.g. remote pseudo-sources) are skipped.
    pub fn resolve<T: TupleData, S: TupleData>(
        &self,
        sink_tuple: &Arc<GTuple<T, BlMeta>>,
    ) -> Vec<ResolvedSource<S>> {
        sink_tuple
            .meta
            .contributors
            .iter()
            .filter_map(|&id| {
                self.system.store().get(id).and_then(|stored| {
                    stored.payload::<S>().cloned().map(|data| ResolvedSource {
                        id,
                        ts: stored.ts,
                        data,
                    })
                })
            })
            .collect()
    }

    /// Raw stored records for a sink tuple's annotation (payload left type-erased).
    pub fn resolve_raw<T: TupleData>(
        &self,
        sink_tuple: &Arc<GTuple<T, BlMeta>>,
    ) -> Vec<(TupleId, StoredSource)> {
        sink_tuple
            .meta
            .contributors
            .iter()
            .filter_map(|&id| self.system.store().get(id).map(|s| (id, s)))
            .collect()
    }

    /// Number of source tuples currently retained by the baseline.
    pub fn retained_sources(&self) -> usize {
        self.system.store().len()
    }

    /// Approximate memory retained by the baseline store, in bytes.
    pub fn retained_bytes(&self) -> usize {
        self.system.store().size_bytes()
    }
}

/// A source tuple recovered from the baseline's store.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedSource<S> {
    /// Id of the source tuple.
    pub id: TupleId,
    /// Timestamp of the source tuple.
    pub ts: genealog_spe::Timestamp,
    /// Payload of the source tuple.
    pub data: S,
}

#[cfg(test)]
mod tests {
    use super::*;
    use genealog_spe::operator::source::VecSource;
    use genealog_spe::prelude::*;

    #[test]
    fn annotations_accumulate_through_aggregate_and_filter() {
        let baseline = AriadneBaseline::new();
        let mut q = Query::new(baseline.clone());
        // (car, speed) every 30 s; car 1 stops 4 times.
        let reports: Vec<(u32, u32)> = vec![(2, 50), (1, 0), (1, 0), (1, 0), (1, 0)];
        let src = q.source("reports", VecSource::with_period(reports, 30_000));
        let stopped = q.filter("speed0", src, |r: &(u32, u32)| r.1 == 0);
        let counts = q.aggregate(
            "count",
            stopped,
            WindowSpec::new(Duration::from_secs(120), Duration::from_secs(30)).unwrap(),
            |r: &(u32, u32)| r.0,
            |w| (*w.key, w.len()),
        );
        let alerts = q.filter("alerts", counts, |c: &(u32, usize)| c.1 >= 4);
        let out = q.collecting_sink("sink", alerts);
        q.deploy().unwrap().wait().unwrap();

        let alerts = out.tuples();
        assert!(!alerts.is_empty());
        let first = &alerts[0];
        assert_eq!(
            first.meta.len(),
            4,
            "annotation lists the four stopped reports"
        );

        let collector = BaselineCollector::new(baseline);
        let sources: Vec<ResolvedSource<(u32, u32)>> = collector.resolve(first);
        assert_eq!(sources.len(), 4);
        assert!(sources.iter().all(|s| s.data == (1, 0)));
        // The baseline retained *all* five source tuples, including the car that never
        // contributed to any alert.
        assert_eq!(collector.retained_sources(), 5);
        assert!(collector.retained_bytes() > 0);
    }

    #[test]
    fn baseline_store_grows_with_noncontributing_tuples() {
        let baseline = AriadneBaseline::new();
        let mut q = Query::new(baseline.clone());
        let src = q.source(
            "numbers",
            VecSource::with_period((0..500i64).collect(), 1_000),
        );
        // Nothing ever passes the filter: no provenance is ever needed...
        let none = q.filter("never", src, |_| false);
        let out = q.collecting_sink("sink", none);
        q.deploy().unwrap().wait().unwrap();
        assert!(out.is_empty());
        // ...yet the baseline retained every single source tuple.
        assert_eq!(baseline.store().len(), 500);
    }

    #[test]
    fn join_annotations_merge_both_sides() {
        let baseline = AriadneBaseline::new();
        let mut q = Query::new(baseline.clone());
        let left = q.source("left", VecSource::with_period(vec![(1u32, 10i64)], 1_000));
        let right = q.source("right", VecSource::with_period(vec![(1u32, 20i64)], 1_000));
        let joined = q.join(
            "join",
            left,
            right,
            Duration::from_secs(60),
            |l: &(u32, i64), r: &(u32, i64)| l.0 == r.0,
            |l: &(u32, i64), r: &(u32, i64)| (l.0, l.1 + r.1),
        );
        let out = q.collecting_sink("sink", joined);
        q.deploy().unwrap().wait().unwrap();
        let tuples = out.tuples();
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].meta.len(), 2);
        let collector = BaselineCollector::new(baseline);
        let raw = collector.resolve_raw(&tuples[0]);
        assert_eq!(raw.len(), 2);
    }

    #[test]
    fn resolution_with_wrong_schema_yields_nothing() {
        let baseline = AriadneBaseline::new();
        let mut q = Query::new(baseline.clone());
        let src = q.source("numbers", VecSource::with_period(vec![5i64], 1_000));
        let out = q.collecting_sink("sink", src);
        q.deploy().unwrap().wait().unwrap();
        let collector = BaselineCollector::new(baseline);
        let wrong: Vec<ResolvedSource<String>> = collector.resolve(&out.tuples()[0]);
        assert!(wrong.is_empty());
        let right: Vec<ResolvedSource<i64>> = collector.resolve(&out.tuples()[0]);
        assert_eq!(right.len(), 1);
        assert_eq!(right[0].data, 5);
    }

    #[test]
    fn label_is_bl() {
        assert_eq!(AriadneBaseline::new().label(), "BL");
    }
}
