//! Incremental cross-epoch window snapshots: diff and reconstruct.
//!
//! A `GLWS` container (see `genealog_spe::persist`) encodes one epoch's window
//! store canonically. Between consecutive epochs the store mutates in exactly
//! two ways — occurrences are **appended** to surviving window-instance buffers
//! and whole buffers are **retired** when windows close — so a diff only needs
//! three per-entry modes:
//!
//! ```text
//! delta: "GLWD" | version u8 | base_epoch u64 | watermark_ms u64
//!        late_tuples u64 | entry_count u32
//! entry: start_ms u64 | key_len u32 | key | mode u8
//!        mode 0 (unchanged): —                       (copy the base buffer)
//!        mode 1 (appended):  base_count u32 | added_count u32
//!                            added*: occ_len u32 | occ bytes
//!        mode 2 (full):      occ_count u32 | occ*: occ_len u32 | occ bytes
//! ```
//!
//! Entries retired since the base epoch simply do not appear (new entries use
//! mode 2). [`apply`] replays the delta's entry order through the canonical
//! container writer, so the reconstruction is **byte-identical** to the full
//! snapshot the diff was taken from — pinned by proptest at the workspace root.

use std::collections::HashMap;

use genealog_spe::persist::{parse_container, ByteReader, ContainerWriter};

/// Leading magic of an incremental window-snapshot delta.
pub const DELTA_MAGIC: [u8; 4] = *b"GLWD";
/// Delta format version.
pub const DELTA_VERSION: u8 = 1;

const MODE_UNCHANGED: u8 = 0;
const MODE_APPENDED: u8 = 1;
const MODE_FULL: u8 = 2;

/// Whether `bytes` start like an encoded delta.
pub fn is_delta(bytes: &[u8]) -> bool {
    bytes.len() > 5 && bytes[..4] == DELTA_MAGIC && bytes[4] == DELTA_VERSION
}

/// Encodes `next` as a delta against `prev` (the container committed for
/// `base_epoch`). `None` when either buffer is not a parseable container —
/// the caller then falls back to a full record.
pub fn diff(prev: &[u8], base_epoch: u64, next: &[u8]) -> Option<Vec<u8>> {
    let prev = parse_container(prev)?;
    let next = parse_container(next)?;
    let prev_entries: HashMap<(u64, &[u8]), &Vec<&[u8]>> = prev
        .entries
        .iter()
        .map(|e| ((e.start_ms, e.key), &e.occurrences))
        .collect();

    let mut out = Vec::new();
    out.extend_from_slice(&DELTA_MAGIC);
    out.push(DELTA_VERSION);
    out.extend_from_slice(&base_epoch.to_le_bytes());
    out.extend_from_slice(&next.watermark_ms.to_le_bytes());
    out.extend_from_slice(&next.late_tuples.to_le_bytes());
    out.extend_from_slice(&(next.entries.len() as u32).to_le_bytes());
    for entry in &next.entries {
        out.extend_from_slice(&entry.start_ms.to_le_bytes());
        out.extend_from_slice(&(entry.key.len() as u32).to_le_bytes());
        out.extend_from_slice(entry.key);
        let base = prev_entries.get(&(entry.start_ms, entry.key));
        match base {
            // A surviving buffer whose prefix is byte-equal to the base buffer:
            // ship only what was appended (possibly nothing).
            Some(base_occs)
                if base_occs.len() <= entry.occurrences.len()
                    && base_occs
                        .iter()
                        .zip(&entry.occurrences)
                        .all(|(a, b)| a == b) =>
            {
                if base_occs.len() == entry.occurrences.len() {
                    out.push(MODE_UNCHANGED);
                } else {
                    out.push(MODE_APPENDED);
                    out.extend_from_slice(&(base_occs.len() as u32).to_le_bytes());
                    let added = &entry.occurrences[base_occs.len()..];
                    out.extend_from_slice(&(added.len() as u32).to_le_bytes());
                    for occ in added {
                        out.extend_from_slice(&(occ.len() as u32).to_le_bytes());
                        out.extend_from_slice(occ);
                    }
                }
            }
            // New buffer, or one that mutated in a way appends cannot express.
            _ => {
                out.push(MODE_FULL);
                out.extend_from_slice(&(entry.occurrences.len() as u32).to_le_bytes());
                for occ in &entry.occurrences {
                    out.extend_from_slice(&(occ.len() as u32).to_le_bytes());
                    out.extend_from_slice(occ);
                }
            }
        }
    }
    Some(out)
}

/// The base epoch a delta applies to; `None` for non-delta bytes.
pub fn delta_base_epoch(delta: &[u8]) -> Option<u64> {
    if !is_delta(delta) {
        return None;
    }
    let mut r = ByteReader::new(&delta[5..]);
    r.u64()
}

/// Applies `delta` to the full container of its base epoch, reconstructing the
/// full container of the delta's epoch — byte-identical to what [`diff`] was
/// given as `next`. `None` on any structural mismatch (wrong base, torn delta,
/// missing buffers): corruption is rejected, never papered over.
pub fn apply(base: &[u8], delta: &[u8]) -> Option<Vec<u8>> {
    if !is_delta(delta) {
        return None;
    }
    let base = parse_container(base)?;
    let base_entries: HashMap<(u64, &[u8]), &Vec<&[u8]>> = base
        .entries
        .iter()
        .map(|e| ((e.start_ms, e.key), &e.occurrences))
        .collect();

    let mut r = ByteReader::new(&delta[5..]);
    let _base_epoch = r.u64()?;
    let watermark_ms = r.u64()?;
    let late_tuples = r.u64()?;
    let entry_count = r.u32()? as usize;
    let mut writer = ContainerWriter::new(watermark_ms, late_tuples);
    for _ in 0..entry_count {
        let start_ms = r.u64()?;
        let key_len = r.u32()? as usize;
        let key = r.take(key_len)?;
        match r.u8()? {
            MODE_UNCHANGED => {
                let occs = base_entries.get(&(start_ms, key))?;
                writer.entry(start_ms, key, occs);
            }
            MODE_APPENDED => {
                let base_count = r.u32()? as usize;
                let occs = base_entries.get(&(start_ms, key))?;
                if occs.len() != base_count {
                    return None;
                }
                let added_count = r.u32()? as usize;
                let mut all: Vec<&[u8]> = occs.to_vec();
                for _ in 0..added_count {
                    let len = r.u32()? as usize;
                    all.push(r.take(len)?);
                }
                writer.entry(start_ms, key, &all);
            }
            MODE_FULL => {
                let occ_count = r.u32()? as usize;
                let mut occs: Vec<&[u8]> = Vec::with_capacity(occ_count.min(1 << 16));
                for _ in 0..occ_count {
                    let len = r.u32()? as usize;
                    occs.push(r.take(len)?);
                }
                writer.entry(start_ms, key, &occs);
            }
            _ => return None,
        }
    }
    if !r.is_empty() {
        return None;
    }
    Some(writer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genealog_spe::persist::{PlainWindowPersister, WindowPersister};
    use genealog_spe::time::{Duration, Timestamp};
    use genealog_spe::tuple::GTuple;
    use genealog_spe::window::{WindowSpec, WindowStore};
    use std::sync::Arc;

    /// Drives one window store through `epochs` barriers, returning the full
    /// container of each epoch.
    fn containers(epochs: u64, per_epoch: u64) -> Vec<Vec<u8>> {
        let spec = WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap();
        let mut store: WindowStore<u32, (u32, i64), ()> = WindowStore::new(spec);
        let p = PlainWindowPersister;
        let mut out = Vec::new();
        let mut i = 0u64;
        for _ in 0..epochs {
            for _ in 0..per_epoch {
                let t = Arc::new(GTuple::new(
                    Timestamp::from_secs(i),
                    i,
                    ((i % 3) as u32, i as i64),
                    (),
                ));
                store.insert((i % 3) as u32, t);
                i += 1;
            }
            // Watermark lag closes old windows while new ones stay open.
            store.close_up_to(Timestamp::from_secs(i.saturating_sub(6)));
            out.push(
                WindowPersister::<u32, (u32, i64), ()>::encode(&p, &store.snapshot()).unwrap(),
            );
        }
        out
    }

    #[test]
    fn diff_then_apply_reconstructs_byte_identical_containers() {
        let containers = containers(8, 5);
        for pair in containers.windows(2) {
            let delta = diff(&pair[0], 0, &pair[1]).unwrap();
            assert!(is_delta(&delta));
            assert_eq!(apply(&pair[0], &delta).unwrap(), pair[1]);
        }
    }

    #[test]
    fn deltas_are_smaller_than_full_containers_for_appends() {
        let containers = containers(6, 8);
        let (prev, next) = (&containers[4], &containers[5]);
        let delta = diff(prev, 4, next).unwrap();
        assert!(
            delta.len() < next.len(),
            "delta {} bytes, full {} bytes",
            delta.len(),
            next.len()
        );
    }

    #[test]
    fn torn_delta_is_rejected_cleanly() {
        let containers = containers(3, 6);
        let delta = diff(&containers[1], 1, &containers[2]).unwrap();
        for cut in 0..delta.len() {
            assert!(apply(&containers[1], &delta[..cut]).is_none(), "cut {cut}");
        }
        assert!(apply(&containers[1], &delta).is_some());
    }

    #[test]
    fn base_epoch_is_recoverable_from_the_delta() {
        let containers = containers(2, 4);
        let delta = diff(&containers[0], 7, &containers[1]).unwrap();
        assert_eq!(delta_base_epoch(&delta), Some(7));
        assert_eq!(delta_base_epoch(&containers[0]), None);
    }
}
