//! The log-structured durable [`StateBackend`]: segment log + manifest + index.
//!
//! Commit ordering is the crash-safety contract:
//!
//! 1. **write** — the snapshot record is appended to the active segment;
//! 2. **fsync** — the segment is `fdatasync`ed before `put` returns, so by the
//!    time the operator forwards its barrier downstream, the snapshot is on
//!    disk (a worker that dies after forwarding can always re-serve what the
//!    origin believes it committed);
//! 3. **manifest flip** — when the [`CheckpointStore`](genealog_spe::state::CheckpointStore)
//!    completes an epoch it calls [`StateBackend::note_complete_epoch`], which
//!    atomically replaces the manifest pinning that epoch as the recoverable cut.
//!
//! Opening a directory replays the live-generation segments through the
//! torn-tail-tolerant [`scan`](crate::segment::scan()): every record before the
//! first torn or corrupt frame is restored, the tail is rejected, and appends
//! continue into a **fresh** segment so damaged files are never extended.
//!
//! `remove_after` triggers compaction: live snapshots are rewritten as full
//! records into a new generation of segments, the manifest flip commits the
//! switch, and the old generation is deleted (stale files from a compaction
//! that crashed mid-way are swept on the next open). Rewriting fulls resets
//! every incremental chain, so recovery replays at most one delta chain per
//! participant within one generation.
//!
//! Inline (`Snapshot::Inline`) snapshots are kept in a volatile side map: they
//! are process-local `Arc` shares by definition and cannot survive the process.
//! The analyzer's GL014 diagnostic and the [`WindowPersister`](genealog_spe::persist::WindowPersister)
//! registry exist precisely to keep cross-process state out of that map.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use genealog_metrics::{Histogram, MetricsRegistry};
use genealog_spe::persist::is_container;
use genealog_spe::state::{Snapshot, StateBackend};
use parking_lot::Mutex;

use crate::incremental;
use crate::manifest::Manifest;
use crate::segment::{encode_record, scan, Record, RecordKind};

/// Tuning knobs of a [`DurableBackend`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Encode window-snapshot containers as diffs against the previous epoch
    /// when the diff is smaller (full records otherwise).
    pub incremental: bool,
    /// With incremental snapshots on, force a full rebase record every
    /// `rebase_interval` snapshots per participant, bounding the delta chain
    /// recovery must replay. Clamped to at least 1.
    pub rebase_interval: u64,
    /// Roll to a new segment file once the active one exceeds this many bytes.
    pub segment_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            incremental: false,
            rebase_interval: 4,
            segment_bytes: 1 << 20,
        }
    }
}

impl StoreOptions {
    /// The default options with incremental snapshots enabled.
    pub fn incremental() -> Self {
        StoreOptions {
            incremental: true,
            ..StoreOptions::default()
        }
    }
}

/// Per-participant incremental diff state: the last committed container.
struct Chain {
    epoch: u64,
    container: Vec<u8>,
    since_rebase: u64,
}

struct Inner {
    manifest: Manifest,
    active: File,
    active_id: u64,
    active_len: u64,
    /// (participant, epoch) -> full snapshot bytes (deltas are reconstructed).
    index: HashMap<(String, u64), Vec<u8>>,
    /// Volatile side map for process-local inline snapshots.
    inline: HashMap<(String, u64), Snapshot>,
    chains: HashMap<String, Chain>,
    /// Whether the opening scan hit (and cleanly rejected) a torn tail.
    torn_tail_recovered: bool,
    /// Whether the previous process flushed cleanly before exiting.
    previous_clean_shutdown: bool,
}

/// A log-structured durable checkpoint store rooted at one directory.
pub struct DurableBackend {
    dir: PathBuf,
    options: StoreOptions,
    inner: Mutex<Inner>,
    bytes_written: AtomicU64,
    records: AtomicU64,
    compactions: AtomicU64,
    segments: AtomicU64,
    fsyncs: AtomicU64,
    fsync_hist: Mutex<Option<Arc<Histogram>>>,
}

impl fmt::Debug for DurableBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableBackend")
            .field("dir", &self.dir)
            .field("incremental", &self.options.incremental)
            .field("bytes_written", &self.bytes_written.load(Ordering::Relaxed))
            .field("segments", &self.segments.load(Ordering::Relaxed))
            .finish()
    }
}

fn segment_name(generation: u64, id: u64) -> String {
    format!("seg-{generation:06}-{id:06}.log")
}

fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    let (generation, id) = rest.split_once('-')?;
    Some((generation.parse().ok()?, id.parse().ok()?))
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

impl DurableBackend {
    /// Opens (or creates) a store directory with default options.
    ///
    /// # Errors
    /// Propagates I/O failures creating, scanning or writing the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Arc<Self>> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Opens (or creates) a store directory.
    ///
    /// Replays the live generation's segments (tolerating a torn tail), sweeps
    /// segment files left behind by an interrupted compaction, and starts a
    /// fresh active segment for this process's appends.
    ///
    /// # Errors
    /// Propagates I/O failures creating, scanning or writing the directory.
    pub fn open_with(dir: impl Into<PathBuf>, mut options: StoreOptions) -> io::Result<Arc<Self>> {
        options.rebase_interval = options.rebase_interval.max(1);
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut manifest = Manifest::load(&dir).unwrap_or_default();
        let previous_clean_shutdown = manifest.clean_shutdown;

        let mut live: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((generation, id)) = parse_segment_name(name) else {
                continue;
            };
            if generation == manifest.generation {
                live.push((id, entry.path()));
            } else {
                // A compaction that died between its manifest flip and the
                // deletes (or before the flip) leaves another generation's
                // files behind; only the manifest's generation is live.
                let _ = fs::remove_file(entry.path());
            }
        }
        live.sort();

        let mut index = HashMap::new();
        let mut chains = HashMap::new();
        let mut torn_tail_recovered = false;
        'files: for (_, path) in &live {
            let bytes = fs::read(path)?;
            let outcome = scan(&bytes);
            for record in outcome.records {
                if !replay(record, &mut index, &mut chains) {
                    torn_tail_recovered = true;
                    break 'files;
                }
            }
            if outcome.torn {
                torn_tail_recovered = true;
                break;
            }
        }

        // Appends go to a fresh segment — a damaged tail is never extended.
        let active_id = live.last().map_or(0, |(id, _)| id + 1);
        let active_path = dir.join(segment_name(manifest.generation, active_id));
        let active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active_path)?;
        sync_dir(&dir)?;
        manifest.clean_shutdown = false;
        manifest.store(&dir)?;

        let segments = live.len() as u64 + 1;
        Ok(Arc::new(DurableBackend {
            dir,
            options,
            inner: Mutex::new(Inner {
                manifest,
                active,
                active_id,
                active_len: 0,
                index,
                inline: HashMap::new(),
                chains,
                torn_tail_recovered,
                previous_clean_shutdown,
            }),
            bytes_written: AtomicU64::new(0),
            records: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            segments: AtomicU64::new(segments),
            fsyncs: AtomicU64::new(0),
            fsync_hist: Mutex::new(None),
        }))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The epoch the manifest pins as the recoverable cut, if any.
    pub fn latest_complete_epoch(&self) -> Option<u64> {
        self.inner.lock().manifest.latest_complete
    }

    /// Whether the opening scan hit (and cleanly rejected) a torn tail.
    pub fn torn_tail_recovered(&self) -> bool {
        self.inner.lock().torn_tail_recovered
    }

    /// Whether the previous process flushed the manifest on a clean shutdown.
    pub fn previous_clean_shutdown(&self) -> bool {
        self.inner.lock().previous_clean_shutdown
    }

    /// Number of compactions performed since open.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Number of records appended since open.
    pub fn records_appended(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Number of live segment files (including the active one).
    pub fn segment_count(&self) -> u64 {
        self.segments.load(Ordering::Relaxed)
    }

    /// Flushes the active segment and marks a clean shutdown in the manifest
    /// (what `spe-node` does on SIGTERM).
    ///
    /// # Errors
    /// Propagates I/O failures; the store stays usable.
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.active.sync_data()?;
        inner.manifest.clean_shutdown = true;
        inner.manifest.store(&self.dir)
    }

    /// A one-line JSON summary for the control endpoint's `/store` route.
    pub fn status_json(&self) -> String {
        let inner = self.inner.lock();
        let latest = inner
            .manifest
            .latest_complete
            .map_or("null".to_string(), |e| e.to_string());
        format!(
            "{{\"dir\":{:?},\"incremental\":{},\"segments\":{},\"records\":{},\"bytes_written\":{},\"compactions\":{},\"fsyncs\":{},\"snapshots\":{},\"latest_complete_epoch\":{},\"torn_tail_recovered\":{},\"previous_clean_shutdown\":{}}}",
            self.dir.display().to_string(),
            self.options.incremental,
            self.segments.load(Ordering::Relaxed),
            self.records.load(Ordering::Relaxed),
            self.bytes_written.load(Ordering::Relaxed),
            self.compactions.load(Ordering::Relaxed),
            self.fsyncs.load(Ordering::Relaxed),
            inner.index.len() + inner.inline.len(),
            latest,
            inner.torn_tail_recovered,
            inner.previous_clean_shutdown,
        )
    }

    /// Registers the store's `genealog_checkpoint_store_*` metrics on a
    /// registry: bytes written, segment/record/compaction counters and the
    /// fsync latency histogram `put` records into from then on.
    pub fn publish_metrics(self: &Arc<Self>, registry: &MetricsRegistry) {
        let me = Arc::clone(self);
        registry.counter_fn(
            "genealog_checkpoint_store_bytes_written_total",
            &[],
            Arc::new(move || me.bytes_written.load(Ordering::Relaxed)),
        );
        let me = Arc::clone(self);
        registry.gauge_fn(
            "genealog_checkpoint_store_segments",
            &[],
            Arc::new(move || me.segments.load(Ordering::Relaxed)),
        );
        let me = Arc::clone(self);
        registry.counter_fn(
            "genealog_checkpoint_store_compactions_total",
            &[],
            Arc::new(move || me.compactions.load(Ordering::Relaxed)),
        );
        let me = Arc::clone(self);
        registry.counter_fn(
            "genealog_checkpoint_store_records_total",
            &[],
            Arc::new(move || me.records.load(Ordering::Relaxed)),
        );
        *self.fsync_hist.lock() =
            Some(registry.histogram("genealog_checkpoint_store_fsync_ns", &[]));
    }

    fn append(&self, inner: &mut Inner, frame: &[u8]) -> io::Result<()> {
        inner.active.write_all(frame)?;
        let started = std::time::Instant::now();
        inner.active.sync_data()?;
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        if let Some(hist) = self.fsync_hist.lock().as_ref() {
            hist.record(elapsed_ns);
        }
        inner.active_len += frame.len() as u64;
        self.bytes_written
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.records.fetch_add(1, Ordering::Relaxed);
        if inner.active_len >= self.options.segment_bytes {
            self.roll(inner)?;
        }
        Ok(())
    }

    fn roll(&self, inner: &mut Inner) -> io::Result<()> {
        inner.active.sync_data()?;
        inner.active_id += 1;
        let path = self
            .dir
            .join(segment_name(inner.manifest.generation, inner.active_id));
        inner.active = OpenOptions::new().create(true).append(true).open(&path)?;
        sync_dir(&self.dir)?;
        inner.active_len = 0;
        self.segments.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Rewrites the live snapshots as full records into a new segment
    /// generation, flips the manifest (the commit point) and deletes the old
    /// generation. Incremental chains reset: the new generation starts from
    /// full rebases.
    fn compact(&self, inner: &mut Inner) -> io::Result<()> {
        let generation = inner.manifest.generation + 1;
        let mut live: Vec<Record> = inner
            .index
            .iter()
            .map(|((participant, epoch), body)| Record {
                participant: participant.clone(),
                epoch: *epoch,
                kind: RecordKind::Full,
                body: body.clone(),
            })
            .collect();
        live.sort_by(|a, b| (&a.participant, a.epoch).cmp(&(&b.participant, b.epoch)));

        let mut id = 0u64;
        let mut len = 0u64;
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(segment_name(generation, id)))?;
        for record in &live {
            let frame = encode_record(record);
            file.write_all(&frame)?;
            len += frame.len() as u64;
            self.bytes_written
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
            if len >= self.options.segment_bytes {
                file.sync_data()?;
                id += 1;
                len = 0;
                file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.dir.join(segment_name(generation, id)))?;
            }
        }
        file.sync_data()?;
        sync_dir(&self.dir)?;

        // The manifest flip is what commits the compaction.
        inner.manifest.generation = generation;
        inner.manifest.store(&self.dir)?;

        // Best-effort delete of the superseded generation; leftovers are swept
        // on the next open.
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if let Some((g, _)) = parse_segment_name(name) {
                    if g < generation {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }

        // Fresh active segment after the compacted ones.
        inner.active_id = id + 1;
        inner.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(segment_name(generation, inner.active_id)))?;
        sync_dir(&self.dir)?;
        inner.active_len = 0;

        // Chains restart from the newest surviving container per participant.
        inner.chains.clear();
        let mut newest: HashMap<&String, (u64, &Vec<u8>)> = HashMap::new();
        for ((participant, epoch), body) in &inner.index {
            if !is_container(body) {
                continue;
            }
            match newest.get(participant) {
                Some((e, _)) if *e >= *epoch => {}
                _ => {
                    newest.insert(participant, (*epoch, body));
                }
            }
        }
        let rebuilt: Vec<(String, Chain)> = newest
            .into_iter()
            .map(|(participant, (epoch, body))| {
                (
                    participant.clone(),
                    Chain {
                        epoch,
                        container: body.clone(),
                        since_rebase: 0,
                    },
                )
            })
            .collect();
        inner.chains.extend(rebuilt);

        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.segments.store(id + 2, Ordering::Relaxed);
        Ok(())
    }
}

/// Replays one scanned record into the index and chains. `false` means the
/// record is inconsistent (a delta without its base) — the scan stops there,
/// exactly like a torn tail.
fn replay(
    record: Record,
    index: &mut HashMap<(String, u64), Vec<u8>>,
    chains: &mut HashMap<String, Chain>,
) -> bool {
    match record.kind {
        RecordKind::Full => {
            if is_container(&record.body) {
                chains.insert(
                    record.participant.clone(),
                    Chain {
                        epoch: record.epoch,
                        container: record.body.clone(),
                        since_rebase: 0,
                    },
                );
            }
            index.insert((record.participant, record.epoch), record.body);
            true
        }
        RecordKind::Delta { base_epoch } => {
            let Some(chain) = chains.get_mut(&record.participant) else {
                return false;
            };
            if chain.epoch != base_epoch {
                return false;
            }
            let Some(full) = incremental::apply(&chain.container, &record.body) else {
                return false;
            };
            chain.epoch = record.epoch;
            chain.container = full.clone();
            chain.since_rebase += 1;
            index.insert((record.participant, record.epoch), full);
            true
        }
    }
}

impl StateBackend for DurableBackend {
    fn name(&self) -> &'static str {
        "durable-log"
    }

    fn put(&self, participant: &str, epoch: u64, snapshot: Snapshot) {
        match snapshot {
            inline @ Snapshot::Inline(_) => {
                // Process-local by definition; documented volatile side map.
                self.inner
                    .lock()
                    .inline
                    .insert((participant.to_string(), epoch), inline);
            }
            Snapshot::Bytes(bytes) => {
                let mut inner = self.inner.lock();
                let mut kind = RecordKind::Full;
                let mut body = bytes.clone();
                let mut since_rebase = 0;
                if self.options.incremental && is_container(&bytes) {
                    if let Some(chain) = inner.chains.get(participant) {
                        if epoch > chain.epoch
                            && chain.since_rebase + 1 < self.options.rebase_interval
                        {
                            if let Some(delta) =
                                incremental::diff(&chain.container, chain.epoch, &bytes)
                            {
                                if delta.len() < bytes.len() {
                                    kind = RecordKind::Delta {
                                        base_epoch: chain.epoch,
                                    };
                                    body = delta;
                                    since_rebase = chain.since_rebase + 1;
                                }
                            }
                        }
                    }
                }
                let frame = encode_record(&Record {
                    participant: participant.to_string(),
                    epoch,
                    kind,
                    body,
                });
                if let Err(err) = self.append(&mut inner, &frame) {
                    // A lost checkpoint write must not pass silently: failing
                    // the operator thread routes through the normal fence +
                    // recovery path instead of pretending the epoch persisted.
                    panic!(
                        "durable checkpoint append failed in {}: {err}",
                        self.dir.display()
                    );
                }
                if is_container(&bytes) {
                    inner.chains.insert(
                        participant.to_string(),
                        Chain {
                            epoch,
                            container: bytes.clone(),
                            since_rebase,
                        },
                    );
                }
                inner.index.insert((participant.to_string(), epoch), bytes);
            }
        }
    }

    fn get(&self, participant: &str, epoch: u64) -> Option<Snapshot> {
        let inner = self.inner.lock();
        let key = (participant.to_string(), epoch);
        if let Some(bytes) = inner.index.get(&key) {
            return Some(Snapshot::Bytes(bytes.clone()));
        }
        inner.inline.get(&key).cloned()
    }

    fn remove_after(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        inner.inline.retain(|(_, e), _| *e <= epoch);
        inner.index.retain(|(_, e), _| *e <= epoch);
        // Completeness is monotone (participants commit epochs in order), so
        // clamping the pinned cut to the removal point stays correct.
        if inner.manifest.latest_complete.is_some_and(|l| l > epoch) {
            inner.manifest.latest_complete = Some(epoch);
        }
        if let Err(err) = self.compact(&mut inner) {
            panic!(
                "checkpoint store compaction failed in {}: {err}",
                self.dir.display()
            );
        }
    }

    fn snapshot_count(&self) -> usize {
        let inner = self.inner.lock();
        inner.index.len() + inner.inline.len()
    }

    fn serialized_bytes(&self) -> usize {
        self.inner.lock().index.values().map(Vec::len).sum()
    }

    fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    fn note_complete_epoch(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        if inner.manifest.latest_complete.is_none_or(|l| epoch > l) {
            inner.manifest.latest_complete = Some(epoch);
            if let Err(err) = inner.manifest.store(&self.dir) {
                panic!(
                    "checkpoint manifest flip failed in {}: {err}",
                    self.dir.display()
                );
            }
        }
    }

    fn is_durable(&self) -> bool {
        true
    }
}

/// A participant-prefixing view of a shared [`DurableBackend`].
///
/// A node hosting several shard engines gives each hosted engine its own
/// `CheckpointStore` over a scope like `shard3/`, all funnelling into the one
/// store directory — participants named `sum` in different engines stay
/// distinct on disk without touching any operator commit path.
#[derive(Debug)]
pub struct ScopedBackend {
    inner: Arc<DurableBackend>,
    scope: String,
}

impl ScopedBackend {
    /// Creates a scope over `inner`; `scope` becomes the participant prefix.
    pub fn new(inner: Arc<DurableBackend>, scope: impl Into<String>) -> Arc<Self> {
        Arc::new(ScopedBackend {
            inner,
            scope: scope.into(),
        })
    }

    fn scoped(&self, participant: &str) -> String {
        format!("{}/{}", self.scope, participant)
    }
}

impl StateBackend for ScopedBackend {
    fn name(&self) -> &'static str {
        "durable-log"
    }

    fn put(&self, participant: &str, epoch: u64, snapshot: Snapshot) {
        self.inner.put(&self.scoped(participant), epoch, snapshot);
    }

    fn get(&self, participant: &str, epoch: u64) -> Option<Snapshot> {
        self.inner.get(&self.scoped(participant), epoch)
    }

    fn remove_after(&self, epoch: u64) {
        self.inner.remove_after(epoch);
    }

    fn snapshot_count(&self) -> usize {
        self.inner.snapshot_count()
    }

    fn serialized_bytes(&self) -> usize {
        self.inner.serialized_bytes()
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn note_complete_epoch(&self, epoch: u64) {
        self.inner.note_complete_epoch(epoch);
    }

    fn is_durable(&self) -> bool {
        true
    }
}
