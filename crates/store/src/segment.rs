//! The append-only segment record format and the torn-tail-tolerant scan.
//!
//! A segment file is a sequence of frames:
//!
//! ```text
//! frame:   payload_len u32 | crc32 u32 | payload
//! payload: participant_len u16 | participant utf8 | epoch u64 | kind u8
//!          [base_epoch u64 when kind = delta] | body_len u32 | body
//! ```
//!
//! All integers little-endian. A crash can tear at most the **tail** of the
//! active segment: frames are appended and fsynced in order, so every frame
//! before the torn one is intact. [`scan`] decodes frames until the first
//! length/CRC/structure failure and reports how many clean bytes it consumed —
//! the torn record is rejected wholesale (no panic, no zero-fill), mirroring
//! the wire layer's truncation handling.

use genealog_spe::persist::ByteReader;

use crate::codec::crc32;

/// How a record's body relates to earlier records of the same participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// `body` is a complete snapshot (byte container or opaque bytes).
    Full,
    /// `body` is an incremental diff against the participant's snapshot for
    /// `base_epoch` (see [`crate::incremental`]).
    Delta {
        /// The epoch whose reconstructed container the delta applies to.
        base_epoch: u64,
    },
}

/// One durable snapshot record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The committing participant (operator name, scoped by the backend).
    pub participant: String,
    /// The epoch the snapshot belongs to.
    pub epoch: u64,
    /// Full snapshot or incremental delta.
    pub kind: RecordKind,
    /// The snapshot (or delta) bytes.
    pub body: Vec<u8>,
}

const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;

/// Encodes one record as a CRC-framed segment frame.
pub fn encode_record(record: &Record) -> Vec<u8> {
    let mut payload = Vec::with_capacity(record.participant.len() + record.body.len() + 32);
    payload.extend_from_slice(&(record.participant.len() as u16).to_le_bytes());
    payload.extend_from_slice(record.participant.as_bytes());
    payload.extend_from_slice(&record.epoch.to_le_bytes());
    match record.kind {
        RecordKind::Full => payload.push(KIND_FULL),
        RecordKind::Delta { base_epoch } => {
            payload.push(KIND_DELTA);
            payload.extend_from_slice(&base_epoch.to_le_bytes());
        }
    }
    payload.extend_from_slice(&(record.body.len() as u32).to_le_bytes());
    payload.extend_from_slice(&record.body);

    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut r = ByteReader::new(payload);
    let participant_len = u16::from_le_bytes(r.take(2)?.try_into().ok()?) as usize;
    let participant = String::from_utf8(r.take(participant_len)?.to_vec()).ok()?;
    let epoch = r.u64()?;
    let kind = match r.u8()? {
        KIND_FULL => RecordKind::Full,
        KIND_DELTA => RecordKind::Delta {
            base_epoch: r.u64()?,
        },
        _ => return None,
    };
    let body_len = r.u32()? as usize;
    let body = r.take(body_len)?.to_vec();
    if !r.is_empty() {
        return None;
    }
    Some(Record {
        participant,
        epoch,
        kind,
        body,
    })
}

/// Decodes the frame starting at `at`. Returns the record and the offset of
/// the next frame; `None` when the bytes at `at` are not one intact frame
/// (torn tail, flipped bits, or end of input).
pub fn decode_frame(bytes: &[u8], at: usize) -> Option<(Record, usize)> {
    let header = bytes.get(at..at + 8)?;
    let payload_len = u32::from_le_bytes(header[..4].try_into().ok()?) as usize;
    let expected_crc = u32::from_le_bytes(header[4..8].try_into().ok()?);
    let payload = bytes.get(at + 8..at + 8 + payload_len)?;
    if crc32(payload) != expected_crc {
        return None;
    }
    Some((decode_payload(payload)?, at + 8 + payload_len))
}

/// The outcome of scanning one segment's bytes.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Every intact record, in append order.
    pub records: Vec<Record>,
    /// Bytes consumed by intact frames (the clean prefix length).
    pub clean_bytes: usize,
    /// Whether bytes remained after the clean prefix — a torn or corrupt tail.
    pub torn: bool,
}

/// Scans a segment, stopping cleanly at the first torn or corrupt frame.
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        match decode_frame(bytes, at) {
            Some((record, next)) => {
                records.push(record);
                at = next;
            }
            None => break,
        }
    }
    ScanOutcome {
        records,
        clean_bytes: at,
        torn: at < bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> Record {
        Record {
            participant: format!("agg[{}]", i % 3),
            epoch: i,
            kind: if i % 4 == 3 {
                RecordKind::Delta { base_epoch: i - 1 }
            } else {
                RecordKind::Full
            },
            body: (0..(i as u8).wrapping_mul(7)).collect(),
        }
    }

    #[test]
    fn roundtrips_a_log_of_records() {
        let records: Vec<Record> = (0..10).map(sample).collect();
        let mut log = Vec::new();
        for r in &records {
            log.extend_from_slice(&encode_record(r));
        }
        let outcome = scan(&log);
        assert!(!outcome.torn);
        assert_eq!(outcome.clean_bytes, log.len());
        assert_eq!(outcome.records, records);
    }

    #[test]
    fn truncation_keeps_the_clean_prefix_and_rejects_the_torn_record() {
        let records: Vec<Record> = (0..6).map(sample).collect();
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            log.extend_from_slice(&encode_record(r));
            boundaries.push(log.len());
        }
        for cut in 0..log.len() {
            let outcome = scan(&log[..cut]);
            // The scan recovers exactly the records whose frames fit before the cut.
            let intact = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(outcome.records.len(), intact, "cut at {cut}");
            assert_eq!(outcome.records[..], records[..intact]);
            assert_eq!(outcome.torn, cut != boundaries[intact]);
        }
    }

    #[test]
    fn bit_flip_in_payload_is_rejected_by_crc() {
        let mut frame = encode_record(&sample(2));
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        assert!(decode_frame(&frame, 0).is_none());
        // And the scan stops without panicking or inventing data.
        let outcome = scan(&frame);
        assert!(outcome.records.is_empty());
        assert!(outcome.torn);
    }
}
