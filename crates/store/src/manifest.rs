//! The manifest: the store's single atomically-replaced commit point.
//!
//! Segment appends are only *potentially* live until the manifest says which
//! generation of segment files is current and which epoch completed last. The
//! manifest is replaced atomically — write `MANIFEST.tmp`, fsync it, `rename`
//! over `MANIFEST`, fsync the directory — so a crash leaves either the old or
//! the new manifest, never a torn one; a corrupt or missing manifest falls back
//! to defaults (generation 0, nothing complete), which a fresh directory
//! satisfies trivially.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use genealog_spe::persist::ByteReader;

use crate::codec::crc32;

const MAGIC: [u8; 4] = *b"GLMF";
const VERSION: u8 = 1;
const FILE: &str = "MANIFEST";
const TMP: &str = "MANIFEST.tmp";

/// The durable metadata of a store directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Compaction generation: only segment files of this generation are live.
    pub generation: u64,
    /// The greatest epoch every participant committed (the recoverable cut).
    pub latest_complete: Option<u64>,
    /// Whether the previous process flushed the store on a clean shutdown.
    pub clean_shutdown: bool,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(32);
        payload.extend_from_slice(&MAGIC);
        payload.push(VERSION);
        payload.extend_from_slice(&self.generation.to_le_bytes());
        match self.latest_complete {
            Some(epoch) => {
                payload.push(1);
                payload.extend_from_slice(&epoch.to_le_bytes());
            }
            None => payload.push(0),
        }
        payload.push(u8::from(self.clean_shutdown));
        let checksum = crc32(&payload);
        payload.extend_from_slice(&checksum.to_le_bytes());
        payload
    }

    fn decode(bytes: &[u8]) -> Option<Manifest> {
        if bytes.len() < 4 + 4 {
            return None;
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 4);
        if crc32(payload) != u32::from_le_bytes(tail.try_into().ok()?) {
            return None;
        }
        let mut r = ByteReader::new(payload);
        if r.take(4)? != MAGIC || r.u8()? != VERSION {
            return None;
        }
        let generation = r.u64()?;
        let latest_complete = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            _ => return None,
        };
        let clean_shutdown = r.u8()? == 1;
        if !r.is_empty() {
            return None;
        }
        Some(Manifest {
            generation,
            latest_complete,
            clean_shutdown,
        })
    }

    /// Loads the manifest of `dir`; `None` when missing or corrupt (the caller
    /// falls back to [`Manifest::default`]).
    pub fn load(dir: &Path) -> Option<Manifest> {
        let mut bytes = Vec::new();
        File::open(dir.join(FILE))
            .ok()?
            .read_to_end(&mut bytes)
            .ok()?;
        Manifest::decode(&bytes)
    }

    /// Atomically replaces the manifest of `dir`: tmp write → fsync → rename →
    /// directory fsync. This is the store's commit point.
    ///
    /// # Errors
    /// Propagates any I/O failure; the previous manifest stays in place.
    pub fn store(&self, dir: &Path) -> io::Result<()> {
        let tmp = dir.join(TMP);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&self.encode())?;
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, dir.join(FILE))?;
        // Persist the rename itself.
        File::open(dir)?.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrips_via_the_filesystem() {
        let dir = temp_dir("roundtrip");
        assert_eq!(Manifest::load(&dir), None);
        let manifest = Manifest {
            generation: 3,
            latest_complete: Some(17),
            clean_shutdown: true,
        };
        manifest.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir), Some(manifest));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_rejected_not_trusted() {
        let dir = temp_dir("corrupt");
        let manifest = Manifest {
            generation: 1,
            latest_complete: Some(5),
            clean_shutdown: false,
        };
        manifest.store(&dir).unwrap();
        // Flip one byte on disk: the CRC must reject the whole manifest.
        let path = dir.join(FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[6] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert_eq!(Manifest::load(&dir), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_manifest_is_rejected() {
        let manifest = Manifest {
            generation: 2,
            latest_complete: None,
            clean_shutdown: true,
        };
        let bytes = manifest.encode();
        for cut in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..cut]).is_none(), "cut {cut}");
        }
        assert_eq!(Manifest::decode(&bytes), Some(manifest));
    }
}
