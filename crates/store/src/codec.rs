//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over record payloads.
//!
//! Hand-rolled table-based implementation — the store is dependency-free by
//! design; the polynomial matches zlib/`crc32fast` so checksums are stable and
//! externally verifiable.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard zlib test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let bytes = b"genealog".to_vec();
        let base = crc32(&bytes);
        for i in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), base, "bit {i}");
        }
    }
}
