//! Log-structured durable checkpoint store for the GeneaLog reproduction.
//!
//! Implements [`StateBackend`](genealog_spe::state::StateBackend) over real
//! files so checkpointed operator state — including each operator's slice of
//! the provenance graph, byte-encoded through a
//! [`WindowPersister`](genealog_spe::persist::WindowPersister) — survives a
//! process death. The moving parts:
//!
//! * [`segment`] — append-only segments of length-delimited, CRC-checksummed
//!   snapshot records, scanned with torn-tail tolerance;
//! * [`manifest`] — the atomically-replaced commit point pinning the segment
//!   generation and the latest complete epoch;
//! * [`incremental`] — cross-epoch `GLWS` container diffs with periodic full
//!   rebase, reconstructed byte-identical to full snapshots;
//! * [`backend`] — [`DurableBackend`] tying it together (write → fsync →
//!   manifest flip; compaction on `remove_after`), plus [`ScopedBackend`] for
//!   multi-engine nodes sharing one directory.
//!
//! ```text
//! state-dir/
//! ├── MANIFEST            generation · latest complete epoch · clean-shutdown
//! ├── MANIFEST.tmp        (transient; rename target is the atomic flip)
//! ├── seg-000000-000000.log
//! └── seg-000000-000001.log   ← active, fsynced on every put
//! ```

pub mod backend;
pub mod codec;
pub mod incremental;
pub mod manifest;
pub mod segment;

pub use backend::{DurableBackend, ScopedBackend, StoreOptions};
pub use manifest::Manifest;
pub use segment::{Record, RecordKind};
