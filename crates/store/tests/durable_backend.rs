//! End-to-end behaviour of the durable backend over a real directory: survive
//! reopen (the cross-process shape), pin complete epochs in the manifest,
//! compact on `remove_after`, reconstruct incremental chains — and, the PR's
//! crash-safety satellite, a proptest that truncates the segment log at a
//! *random byte offset* and asserts recovery keeps every record before the
//! torn one and cleanly rejects the torn one (no panic, no zero-fill).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use genealog_spe::state::{Snapshot, StateBackend};
use genealog_store::segment::{encode_record, Record, RecordKind};
use genealog_store::{DurableBackend, StoreOptions};

static DIRS: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "store-{tag}-{}-{}",
        std::process::id(),
        DIRS.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn snapshots_survive_reopen() {
    let dir = temp_dir("reopen");
    {
        let backend = DurableBackend::open(&dir).unwrap();
        backend.put("src", 0, Snapshot::u64(10));
        backend.put("agg", 0, Snapshot::bytes(vec![1, 2, 3]));
        backend.put("src", 1, Snapshot::u64(20));
        backend.note_complete_epoch(0);
        assert!(backend.is_durable());
        assert_eq!(backend.snapshot_count(), 3);
    }
    // A second open models the restarted process.
    let backend = DurableBackend::open(&dir).unwrap();
    assert_eq!(backend.get("src", 0).unwrap().as_u64(), Some(10));
    assert_eq!(
        backend.get("agg", 0).unwrap().as_bytes(),
        Some(&[1u8, 2, 3][..])
    );
    assert_eq!(backend.get("src", 1).unwrap().as_u64(), Some(20));
    assert_eq!(backend.latest_complete_epoch(), Some(0));
    assert!(!backend.torn_tail_recovered());
    assert!(!backend.previous_clean_shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inline_snapshots_stay_volatile() {
    let dir = temp_dir("inline");
    {
        let backend = DurableBackend::open(&dir).unwrap();
        backend.put("agg", 0, Snapshot::inline(vec![7i64]));
        assert!(backend.get("agg", 0).is_some());
    }
    let backend = DurableBackend::open(&dir).unwrap();
    assert!(
        backend.get("agg", 0).is_none(),
        "inline snapshots are process-local by contract"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flush_marks_a_clean_shutdown() {
    let dir = temp_dir("flush");
    {
        let backend = DurableBackend::open(&dir).unwrap();
        backend.put("src", 0, Snapshot::u64(1));
        backend.flush().unwrap();
    }
    let backend = DurableBackend::open(&dir).unwrap();
    assert!(backend.previous_clean_shutdown());
    // The reopened store is dirty again until its own flush.
    drop(backend);
    let backend = DurableBackend::open(&dir).unwrap();
    assert!(!backend.previous_clean_shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn remove_after_compacts_and_clamps_the_cut() {
    let dir = temp_dir("compact");
    let backend = DurableBackend::open(&dir).unwrap();
    for epoch in 0..6u64 {
        backend.put("src", epoch, Snapshot::u64(epoch * 10));
        backend.put("agg", epoch, Snapshot::bytes(vec![epoch as u8; 64]));
        backend.note_complete_epoch(epoch);
    }
    assert_eq!(backend.latest_complete_epoch(), Some(5));
    backend.remove_after(2);
    assert_eq!(backend.compactions(), 1);
    assert_eq!(backend.snapshot_count(), 6);
    assert_eq!(backend.latest_complete_epoch(), Some(2));
    assert!(backend.get("src", 3).is_none());
    assert_eq!(backend.get("src", 2).unwrap().as_u64(), Some(20));
    drop(backend);
    // The compacted generation is what a restarted process sees.
    let backend = DurableBackend::open(&dir).unwrap();
    assert_eq!(backend.snapshot_count(), 6);
    assert_eq!(
        backend.get("agg", 1).unwrap().as_bytes(),
        Some(&[1u8; 64][..])
    );
    assert_eq!(backend.latest_complete_epoch(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn segments_roll_at_the_size_threshold() {
    let dir = temp_dir("roll");
    let backend = DurableBackend::open_with(
        &dir,
        StoreOptions {
            segment_bytes: 256,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    for epoch in 0..20u64 {
        backend.put("agg", epoch, Snapshot::bytes(vec![epoch as u8; 100]));
    }
    assert!(backend.segment_count() > 2, "appends must roll segments");
    drop(backend);
    let backend = DurableBackend::open(&dir).unwrap();
    for epoch in 0..20u64 {
        assert_eq!(
            backend.get("agg", epoch).unwrap().as_bytes(),
            Some(&vec![epoch as u8; 100][..])
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Strategy: a sequence of `(participant, body)` snapshot commits with
/// monotonically increasing epochs.
fn commits() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    proptest::collection::vec(
        (0u8..4, proptest::collection::vec(any::<u8>(), 0..48)),
        1..24,
    )
    .prop_map(|steps| {
        steps
            .into_iter()
            .map(|(p, body)| (format!("op{p}"), body))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// **Crash at a random byte offset.** Commit a random snapshot sequence,
    /// truncate the segment log mid-record, reopen: every epoch whose frame
    /// lies before the cut is intact and byte-identical, the torn record is
    /// rejected (absent, not zero-filled), and nothing panics.
    #[test]
    fn truncated_log_recovers_the_clean_prefix(
        commits in commits(),
        cut_seed in 0u64..10_000,
    ) {
        let dir = temp_dir("torn");
        {
            let backend = DurableBackend::open(&dir).unwrap();
            for (epoch, (participant, body)) in commits.iter().enumerate() {
                backend.put(participant, epoch as u64, Snapshot::bytes(body.clone()));
            }
        }
        // Reconstruct the exact frame layout to know what survives a cut.
        let mut boundaries = vec![0usize];
        let mut log_len = 0usize;
        for (epoch, (participant, body)) in commits.iter().enumerate() {
            log_len += encode_record(&Record {
                participant: participant.clone(),
                epoch: epoch as u64,
                kind: RecordKind::Full,
                body: body.clone(),
            })
            .len();
            boundaries.push(log_len);
        }
        // Every put of a fresh store lands in the first segment file.
        let segment = dir.join("seg-000000-000000.log");
        prop_assert_eq!(std::fs::metadata(&segment).unwrap().len() as usize, log_len);
        let cut = (cut_seed as usize) % (log_len + 1);
        let bytes = std::fs::read(&segment).unwrap();
        std::fs::write(&segment, &bytes[..cut]).unwrap();

        let backend = DurableBackend::open(&dir).unwrap();
        let intact = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        for (epoch, (participant, body)) in commits.iter().enumerate() {
            // Same (participant, epoch) is committed once, so survival is
            // exactly "my frame fits in the clean prefix".
            let got = backend.get(participant, epoch as u64);
            if epoch < intact {
                let got = got.expect("record before the torn frame must survive");
                prop_assert_eq!(got.as_bytes(), Some(&body[..]));
            } else {
                prop_assert!(got.is_none(), "torn record must be rejected, not zero-filled");
            }
        }
        prop_assert_eq!(backend.torn_tail_recovered(), cut != boundaries[intact]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn incremental_chains_survive_reopen_and_truncation_of_the_tail() {
    use genealog_spe::persist::{PlainWindowPersister, WindowPersister};
    use genealog_spe::time::{Duration, Timestamp};
    use genealog_spe::tuple::GTuple;
    use genealog_spe::window::{WindowSpec, WindowStore};
    use std::sync::Arc;

    // Drive a real window store through several epochs of container snapshots.
    let spec = WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap();
    let mut store: WindowStore<u32, (u32, i64), ()> = WindowStore::new(spec);
    let persister = PlainWindowPersister;
    let mut containers = Vec::new();
    let mut i = 0u64;
    for _ in 0..10 {
        for _ in 0..6 {
            let t = Arc::new(GTuple::new(
                Timestamp::from_secs(i),
                i,
                ((i % 3) as u32, i as i64),
                (),
            ));
            store.insert((i % 3) as u32, t);
            i += 1;
        }
        store.close_up_to(Timestamp::from_secs(i.saturating_sub(6)));
        containers.push(
            WindowPersister::<u32, (u32, i64), ()>::encode(&persister, &store.snapshot()).unwrap(),
        );
    }

    let dir = temp_dir("chain");
    {
        let backend = DurableBackend::open_with(&dir, StoreOptions::incremental()).unwrap();
        for (epoch, container) in containers.iter().enumerate() {
            backend.put("agg", epoch as u64, Snapshot::bytes(container.clone()));
        }
        // The log must actually contain deltas: cumulative appended bytes are
        // well below what full containers would cost.
        let full: u64 = containers.iter().map(|c| c.len() as u64 + 64).sum();
        assert!(
            backend.bytes_written() < full,
            "incremental log ({}) must beat full snapshots ({full})",
            backend.bytes_written()
        );
    }
    // Reopen replays the delta chain; every epoch reconstructs byte-identical.
    let backend = DurableBackend::open_with(&dir, StoreOptions::incremental()).unwrap();
    for (epoch, container) in containers.iter().enumerate() {
        assert_eq!(
            backend.get("agg", epoch as u64).unwrap().as_bytes(),
            Some(&container[..]),
            "epoch {epoch}"
        );
    }
    drop(backend);

    // Truncate the tail mid-frame: the clean prefix of the chain survives.
    let segment = dir.join("seg-000000-000000.log");
    let bytes = std::fs::read(&segment).unwrap();
    std::fs::write(&segment, &bytes[..bytes.len() - 7]).unwrap();
    let backend = DurableBackend::open_with(&dir, StoreOptions::incremental()).unwrap();
    assert!(backend.torn_tail_recovered());
    let survived = (0..containers.len())
        .take_while(|&e| backend.get("agg", e as u64).is_some())
        .count();
    assert!(
        survived >= containers.len() - 1,
        "only the torn tail record may be lost"
    );
    for (epoch, container) in containers.iter().enumerate().take(survived) {
        assert_eq!(
            backend.get("agg", epoch as u64).unwrap().as_bytes(),
            Some(&container[..])
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scoped_backends_keep_same_named_participants_distinct() {
    let dir = temp_dir("scoped");
    let shared = DurableBackend::open(&dir).unwrap();
    let shard0 = genealog_store::ScopedBackend::new(Arc::clone(&shared), "shard0");
    let shard1 = genealog_store::ScopedBackend::new(Arc::clone(&shared), "shard1");
    shard0.put("sum", 0, Snapshot::u64(100));
    shard1.put("sum", 0, Snapshot::u64(200));
    assert_eq!(shard0.get("sum", 0).unwrap().as_u64(), Some(100));
    assert_eq!(shard1.get("sum", 0).unwrap().as_u64(), Some(200));
    drop((shard0, shard1));
    drop(shared);
    let shared = DurableBackend::open(&dir).unwrap();
    let shard1 = genealog_store::ScopedBackend::new(shared, "shard1");
    assert_eq!(shard1.get("sum", 0).unwrap().as_u64(), Some(200));
    let _ = std::fs::remove_dir_all(&dir);
}
