//! Hand-rolled JSON emission helpers for the provenance endpoint.
//!
//! The control plane emits small, flat documents; a string escape and a couple of
//! composition helpers keep the provenance services dependency-free.

/// Escapes `s` for inclusion in a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a JSON string literal, quotes included.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Joins already-rendered JSON values into an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Joins `(key, already-rendered value)` pairs into an object.
pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, String)>) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&string(key));
        out.push(':');
        out.push_str(&value);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_characters_and_quotes() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn composes_objects_and_arrays() {
        let doc = object([
            ("id", string("3#0")),
            ("n", "4".to_string()),
            ("xs", array(["1".to_string(), "2".to_string()])),
        ]);
        assert_eq!(doc, r#"{"id":"3#0","n":4,"xs":[1,2]}"#);
        assert_eq!(array([]), "[]");
        assert_eq!(object([]), "{}");
    }
}
