//! The embedded control endpoint of a running query: a minimal, dependency-free
//! HTTP/1.1 server over `std::net` exposing the live observability plane.
//!
//! Routes:
//!
//! * `GET /healthz` — liveness probe, returns `ok`.
//! * `GET /metrics` — Prometheus text exposition of the query's
//!   [`MetricsRegistry`](genealog_metrics::MetricsRegistry), including the deltas
//!   shipped in by remote SPE instances of a spanning shard group.
//! * `GET /topology.dot` — the deployed query graph in DOT form (as rendered by
//!   `Query::to_dot` before deployment).
//! * `GET /provenance/{sink_tuple_id}` — the GeneaLog contribution set of one sink
//!   tuple of the running query, as JSON. Sink ids are `origin#seq` (URL-encode the
//!   `#` as `%23`) or the curl-friendly `origin-seq`.
//!
//! The server is deliberately tiny: blocking accept loop on its own thread, one
//! short-lived handler thread per connection, `Connection: close` on every
//! response. It exists to *observe* — it never mutates the query.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod http;
pub mod json;
mod server;

pub use server::{ControlPlane, ControlServer, ProvenanceQuery};
