//! The control server: route table, accept loop and graceful shutdown.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use genealog_metrics::MetricsRegistry;

use crate::http::{read_request, write_response, Request, Response};

/// Resolves provenance queries against a running (or completed) query.
///
/// Implementors map a sink tuple id (`origin#seq`, also accepted as
/// `origin-seq`) to the JSON rendering of that tuple's GeneaLog contribution
/// set; `None` means the sink tuple is unknown (yet).
///
/// Any `Fn(&str) -> Option<String>` closure is a service, so collectors can be
/// plugged in without depending on this crate's types.
pub trait ProvenanceQuery: Send + Sync + 'static {
    /// The contribution set of `sink_id` as a JSON document, or `None` if no
    /// sink tuple with that id has been observed.
    fn contribution_set(&self, sink_id: &str) -> Option<String>;
}

impl<F> ProvenanceQuery for F
where
    F: Fn(&str) -> Option<String> + Send + Sync + 'static,
{
    fn contribution_set(&self, sink_id: &str) -> Option<String> {
        self(sink_id)
    }
}

/// The observable surface of one query, ready to be served.
///
/// Build with the query's registry, optionally attach the topology rendering
/// and a provenance service, then [`serve`](ControlPlane::serve).
pub struct ControlPlane {
    registry: Arc<MetricsRegistry>,
    topology: Option<String>,
    provenance: Option<Arc<dyn ProvenanceQuery>>,
    analysis: Option<String>,
    store_status: Option<Arc<dyn Fn() -> String + Send + Sync>>,
    read_timeout: Duration,
    write_timeout: Duration,
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("topology", &self.topology.is_some())
            .field("provenance", &self.provenance.is_some())
            .field("analysis", &self.analysis.is_some())
            .field("store_status", &self.store_status.is_some())
            .field("read_timeout", &self.read_timeout)
            .field("write_timeout", &self.write_timeout)
            .finish()
    }
}

impl ControlPlane {
    /// A control plane serving `registry` (normally `Query::registry()`).
    ///
    /// Per-connection socket timeouts default to 2 s reads and 5 s writes; a
    /// client that stalls either direction only ties up its own handler
    /// thread, and only for that long.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        ControlPlane {
            registry,
            topology: None,
            provenance: None,
            analysis: None,
            store_status: None,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
        }
    }

    /// Sets the per-connection read timeout (`Duration::ZERO` = block forever).
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the per-connection write timeout (`Duration::ZERO` = block forever).
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Attaches the DOT rendering served at `/topology.dot` (render it with
    /// `Query::to_dot` before deploying — deployment consumes the query).
    pub fn with_topology(mut self, dot: impl Into<String>) -> Self {
        self.topology = Some(dot.into());
        self
    }

    /// Attaches the provenance service behind `/provenance/{sink_tuple_id}`.
    pub fn with_provenance(mut self, service: impl ProvenanceQuery) -> Self {
        self.provenance = Some(Arc::new(service));
        self
    }

    /// Attaches the deploy-time analysis report served at `/analyze` (the JSON
    /// rendering of the deployed plan's diagnostics — normally
    /// `Analyzed::report.to_json()` from `LogicalPlan::analyze`).
    pub fn with_analysis(mut self, json: impl Into<String>) -> Self {
        self.analysis = Some(json.into());
        self
    }

    /// Attaches the live checkpoint-store status served at `/store`. The
    /// closure is called per request, so the JSON reflects the stores as they
    /// are *now* (segment counts, bytes written, latest complete epoch), not
    /// as they were at attach time.
    pub fn with_store_status(
        mut self,
        status: impl Fn() -> String + Send + Sync + 'static,
    ) -> Self {
        self.store_status = Some(Arc::new(status));
        self
    }

    /// Binds a loopback listener on an ephemeral port and starts serving.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn serve(self) -> io::Result<ControlServer> {
        self.serve_on("127.0.0.1:0")
    }

    /// Binds `addr` and starts serving.
    ///
    /// # Errors
    /// Propagates bind/local-addr failures.
    pub fn serve_on(self, addr: impl ToSocketAddrs) -> io::Result<ControlServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_in_loop = Arc::clone(&stop);
        let plane = Arc::new(self);
        let thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop_in_loop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let plane = Arc::clone(&plane);
                // One short-lived thread per connection: a slow client must not
                // stall the accept loop (or the shutdown self-connect).
                std::thread::spawn(move || handle_connection(stream, &plane));
            }
        });
        Ok(ControlServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }
}

/// Serves one connection: parse, route, respond, close.
fn handle_connection(mut stream: TcpStream, plane: &ControlPlane) {
    let read = plane.read_timeout;
    let write = plane.write_timeout;
    let _ = stream.set_read_timeout((read > Duration::ZERO).then_some(read));
    let _ = stream.set_write_timeout((write > Duration::ZERO).then_some(write));
    let Some(request) = read_request(&mut stream) else {
        return;
    };
    let response = route(plane, &request);
    let _ = write_response(&mut stream, &response);
}

/// The route table.
fn route(plane: &ControlPlane, request: &Request) -> Response {
    if request.method != "GET" {
        return Response::text(405, "only GET is supported\n");
    }
    match request.path.as_str() {
        "/healthz" => Response::text(200, "ok\n"),
        "/metrics" => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: plane.registry.render_prometheus().into_bytes(),
        },
        "/topology.dot" => match &plane.topology {
            Some(dot) => Response {
                status: 200,
                content_type: "text/vnd.graphviz; charset=utf-8",
                body: dot.clone().into_bytes(),
            },
            None => Response::not_found("no topology attached"),
        },
        "/analyze" => match &plane.analysis {
            Some(json) => Response {
                status: 200,
                content_type: "application/json",
                body: json.clone().into_bytes(),
            },
            None => Response::not_found("no analysis attached"),
        },
        "/store" => match &plane.store_status {
            Some(status) => Response {
                status: 200,
                content_type: "application/json",
                body: status().into_bytes(),
            },
            None => Response::not_found("no checkpoint store attached"),
        },
        path => match path.strip_prefix("/provenance/") {
            Some(sink_id) => match &plane.provenance {
                Some(service) => match service.contribution_set(sink_id) {
                    Some(json) => Response {
                        status: 200,
                        content_type: "application/json",
                        body: json.into_bytes(),
                    },
                    None => Response::not_found(&format!("no sink tuple {sink_id}")),
                },
                None => Response::not_found("no provenance service attached"),
            },
            None => Response::not_found(path),
        },
    }
}

/// A running control server; dropping it shuts the accept loop down.
#[derive(Debug)]
pub struct ControlServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ControlServer {
    /// The bound address (useful with the default ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A full URL for `path`, e.g. `server.url("/metrics")`.
    pub fn url(&self, path: &str) -> String {
        format!("http://{}{}", self.addr, path)
    }

    /// Stops the accept loop and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop; the connection is dropped unserved.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ControlServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// A hand-rolled HTTP GET (the test suite has no HTTP client dependency).
    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: control\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        let status = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        let content_type = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Type: "))
            .unwrap_or("")
            .to_string();
        (status, content_type, body.to_string())
    }

    fn plane_with_all_routes() -> ControlPlane {
        let registry = MetricsRegistry::new();
        registry
            .counter("genealog_test_total", &[("operator", "op")])
            .add(7);
        ControlPlane::new(registry)
            .with_topology("digraph G {}\n")
            .with_provenance(|sink_id: &str| {
                (sink_id == "3#0").then(|| r#"{"sink":"3#0"}"#.to_string())
            })
            .with_analysis(r#"{"errors":0,"warnings":1,"diagnostics":[]}"#)
            .with_store_status(|| r#"[{"dir":"/tmp/s","latest_complete_epoch":4}]"#.to_string())
    }

    #[test]
    fn serves_health_metrics_topology_and_provenance() {
        let server = plane_with_all_routes().serve().unwrap();

        let (status, _, body) = get(server.addr(), "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, content_type, body) = get(server.addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(content_type.starts_with("text/plain; version=0.0.4"));
        assert!(body.contains("# TYPE genealog_test_total counter"));
        assert!(body.contains(r#"genealog_test_total{operator="op"} 7"#));

        let (status, content_type, body) = get(server.addr(), "/topology.dot");
        assert_eq!(status, 200);
        assert!(content_type.starts_with("text/vnd.graphviz"));
        assert_eq!(body, "digraph G {}\n");

        let (status, content_type, body) = get(server.addr(), "/analyze");
        assert_eq!(status, 200);
        assert_eq!(content_type, "application/json");
        assert_eq!(body, r#"{"errors":0,"warnings":1,"diagnostics":[]}"#);

        let (status, content_type, body) = get(server.addr(), "/store");
        assert_eq!(status, 200);
        assert_eq!(content_type, "application/json");
        assert_eq!(body, r#"[{"dir":"/tmp/s","latest_complete_epoch":4}]"#);

        // The '#' of a sink id arrives percent-encoded.
        let (status, content_type, body) = get(server.addr(), "/provenance/3%230");
        assert_eq!(status, 200);
        assert_eq!(content_type, "application/json");
        assert_eq!(body, r#"{"sink":"3#0"}"#);

        let (status, _, _) = get(server.addr(), "/provenance/9#9");
        assert_eq!(status, 404);
        let (status, _, _) = get(server.addr(), "/nope");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn missing_services_yield_404_and_post_is_rejected() {
        let server = ControlPlane::new(MetricsRegistry::new()).serve().unwrap();
        let (status, _, _) = get(server.addr(), "/topology.dot");
        assert_eq!(status, 404);
        let (status, _, _) = get(server.addr(), "/provenance/1#1");
        assert_eq!(status, 404);
        let (status, _, _) = get(server.addr(), "/analyze");
        assert_eq!(status, 404);
        let (status, _, _) = get(server.addr(), "/store");
        assert_eq!(status, 404);

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"));
    }

    #[test]
    fn socket_timeouts_are_configurable_and_cut_stalled_readers_loose() {
        // A tight read timeout: a client that connects and never sends sees its
        // connection dropped in roughly that time instead of the former
        // hardcoded 2 s (and the write timeout is applied symmetrically).
        let server = ControlPlane::new(MetricsRegistry::new())
            .with_read_timeout(Duration::from_millis(50))
            .with_write_timeout(Duration::from_millis(50))
            .serve()
            .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let started = std::time::Instant::now();
        let mut buf = [0u8; 1];
        // The handler times out reading the request and closes; the client
        // observes EOF (0 bytes) or a reset — well before the old 2 s floor.
        let outcome = stream.read(&mut buf);
        assert!(matches!(outcome, Ok(0) | Err(_)), "got {outcome:?}");
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "a stalled client must be cut loose by the configured timeout, took {:?}",
            started.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_and_idempotent_via_drop() {
        let server = ControlPlane::new(MetricsRegistry::new()).serve().unwrap();
        let addr = server.addr();
        drop(server);
        // The port is released: a fresh bind to the same address succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "accept loop still holds {addr}");
    }
}
