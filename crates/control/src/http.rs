//! A minimal HTTP/1.1 request parser and response writer.
//!
//! Only what the control endpoint needs: the request line of a `GET` (method +
//! percent-decoded path), headers skipped, every response `Connection: close`.

use std::io::{Read, Write};

/// Upper bound on the request head we are willing to buffer.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request line.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Request {
    /// The HTTP method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// The percent-decoded path, query string stripped.
    pub path: String,
}

/// Reads one request head from `stream` and parses its request line.
///
/// Returns `None` on malformed input (the caller drops the connection).
pub(crate) fn read_request(stream: &mut impl Read) -> Option<Request> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Byte-at-a-time is fine: requests are a few hundred bytes and the accept
    // loop is not a throughput path.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return None;
        }
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => return None,
        }
    }
    let head = std::str::from_utf8(&head).ok()?;
    let request_line = head.lines().next()?;
    parse_request_line(request_line)
}

/// Parses `"GET /path?query HTTP/1.1"` into a [`Request`].
pub(crate) fn parse_request_line(line: &str) -> Option<Request> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    let path = target.split('?').next().unwrap_or(target);
    Some(Request {
        method,
        path: percent_decode(path),
    })
}

/// Decodes `%XX` escapes (and `+` as space) in a URL path component.
pub(crate) fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One response: status, content type and body.
pub(crate) struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// The standard 404.
    pub fn not_found(what: &str) -> Self {
        Response::text(404, format!("not found: {what}\n"))
    }
}

/// Writes `response` to `stream` as a complete HTTP/1.1 message.
pub(crate) fn write_response(stream: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len()
    )?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_line_and_strips_query() {
        let req = parse_request_line("GET /metrics?x=1 HTTP/1.1").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(parse_request_line("GARBAGE").is_none());
        assert!(parse_request_line("GET /x NOTHTTP").is_none());
    }

    #[test]
    fn percent_decoding_handles_escapes_and_junk() {
        assert_eq!(percent_decode("/provenance/3%233"), "/provenance/3#3");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%", "trailing % passes through");
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex passes through");
    }

    #[test]
    fn reads_a_full_request_head() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.path, "/healthz");
        // Truncated head: no terminating blank line.
        assert!(read_request(&mut &b"GET /x HTTP/1.1\r\n"[..]).is_none());
    }

    #[test]
    fn responses_carry_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::text(200, "ok\n")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
