//! Offline stand-in for the subset of `rand` used by the workload simulators:
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64` and `Rng::gen_range` over
//! half-open and inclusive integer ranges. The generator is SplitMix64, which
//! is deterministic, fast and statistically adequate for workload synthesis.

use std::ops::{Range, RangeInclusive};

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value generation over ranges.
pub trait Rng: RngCore {
    /// Samples a uniform value in `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// The raw 64-bit generation primitive.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges [`Rng::gen_range`] can sample a `T` from. The output type is a trait
/// parameter (as in the real `rand`) so the caller's expected type drives integer
/// literal inference inside range expressions.
pub trait SampleRange<T> {
    /// Samples a uniform value from the range.
    fn sample<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample<G: RngCore>(self, rng: &mut G) -> $ty {
                    assert!(self.start < self.end, "cannot sample an empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample<G: RngCore>(self, rng: &mut G) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample an empty range");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    if span == 0 {
                        // Full-width inclusive range: every value is valid.
                        return rng.next_u64() as $ty;
                    }
                    (start as i128 + (rng.next_u64() % span) as i128) as $ty
                }
            }
        )*
    };
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va: Vec<u32> = (0..16).map(|_| a.gen_range(0u32..1_000)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen_range(0u32..1_000)).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(43);
        let vc: Vec<u32> = (0..16).map(|_| c.gen_range(0u32..1_000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u32..=2);
            assert!(w <= 2);
        }
    }
}
