//! Offline stand-in for `crossbeam-channel`.
//!
//! Implements the subset of the crossbeam API this workspace uses: bounded
//! and unbounded MPMC channels with blocking `send`/`recv`, `recv_timeout`,
//! and a waker-based `Select` over multiple receivers. Built on
//! `std::sync::{Mutex, Condvar}`; senders block when a bounded channel is
//! full (back-pressure), receivers block when it is empty.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Error returned by [`Sender::send`] when every receiver is gone; carries the
/// unsent value back to the caller.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::send_timeout`]; carries the unsent value back to
/// the caller.
pub enum SendTimeoutError<T> {
    /// The timeout elapsed while the channel stayed full.
    Timeout(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("SendTimeoutError::Timeout(..)"),
            SendTimeoutError::Disconnected(_) => f.write_str("SendTimeoutError::Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("timed out sending on a full channel"),
            SendTimeoutError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed before an element arrived.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Waker a [`Select`] registers with every channel it watches.
#[derive(Debug, Default)]
struct SelectWaker {
    ready: Mutex<bool>,
    cond: Condvar,
}

impl SelectWaker {
    fn wake(&self) {
        *self.ready.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cond.notify_all();
    }

    fn wait(&self) {
        let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
        while !*ready {
            ready = self.cond.wait(ready).unwrap_or_else(|e| e.into_inner());
        }
        *ready = false;
    }
}

struct Core<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
    /// Select wakers to notify when an element arrives or senders disconnect.
    wakers: Vec<Arc<SelectWaker>>,
    /// Receivers currently blocked in `recv`, used to skip needless notifies.
    waiting_receivers: usize,
    /// Senders currently blocked on a full channel.
    waiting_senders: usize,
}

struct Shared<T> {
    core: Mutex<Core<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn notify_arrival(&self, core: &mut Core<T>) {
        if core.waiting_receivers > 0 {
            self.not_empty.notify_one();
        }
        for waker in &core.wakers {
            waker.wake();
        }
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates a bounded channel with the given capacity (minimum 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(capacity.max(1))
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(usize::MAX)
}

fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        core: Mutex::new(Core {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
            wakers: Vec::new(),
            waiting_receivers: 0,
            waiting_senders: 0,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut core = self.shared.core.lock().unwrap_or_else(|e| e.into_inner());
        core.senders += 1;
        drop(core);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut core = self.shared.core.lock().unwrap_or_else(|e| e.into_inner());
        core.senders -= 1;
        if core.senders == 0 {
            // Receivers must observe the disconnect.
            self.shared.not_empty.notify_all();
            for waker in &core.wakers {
                waker.wake();
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut core = self.shared.core.lock().unwrap_or_else(|e| e.into_inner());
        core.receivers -= 1;
        if core.receivers == 0 {
            // Blocked senders must observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while the channel is full.
    ///
    /// # Errors
    /// Returns [`SendError`] carrying the value back if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut core = self.shared.core.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if core.receivers == 0 {
                return Err(SendError(value));
            }
            if core.queue.len() < core.capacity {
                core.queue.push_back(value);
                self.shared.notify_arrival(&mut core);
                return Ok(());
            }
            core.waiting_senders += 1;
            core = self
                .shared
                .not_full
                .wait(core)
                .unwrap_or_else(|e| e.into_inner());
            core.waiting_senders -= 1;
        }
    }

    /// Sends `value`, waiting at most `timeout` while the channel is full.
    ///
    /// # Errors
    /// [`SendTimeoutError::Timeout`] if the channel stayed full for the whole
    /// timeout, [`SendTimeoutError::Disconnected`] if every receiver is gone;
    /// both carry the value back.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut core = self.shared.core.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if core.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            if core.queue.len() < core.capacity {
                core.queue.push_back(value);
                self.shared.notify_arrival(&mut core);
                return Ok(());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(value));
            }
            core.waiting_senders += 1;
            let (guard, _result) = self
                .shared
                .not_full
                .wait_timeout(core, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            core = guard;
            core.waiting_senders -= 1;
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next element, blocking until one is available.
    ///
    /// # Errors
    /// Returns [`RecvError`] if the channel is empty and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut core = self.shared.core.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = core.queue.pop_front() {
                if core.waiting_senders > 0 {
                    self.shared.not_full.notify_one();
                }
                return Ok(value);
            }
            if core.senders == 0 {
                return Err(RecvError);
            }
            core.waiting_receivers += 1;
            core = self
                .shared
                .not_empty
                .wait(core)
                .unwrap_or_else(|e| e.into_inner());
            core.waiting_receivers -= 1;
        }
    }

    /// Receives the next element, waiting at most `timeout`.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] if nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] if every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut core = self.shared.core.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = core.queue.pop_front() {
                if core.waiting_senders > 0 {
                    self.shared.not_full.notify_one();
                }
                return Ok(value);
            }
            if core.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            core.waiting_receivers += 1;
            let (guard, _result) = self
                .shared
                .not_empty
                .wait_timeout(core, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            core = guard;
            core.waiting_receivers -= 1;
        }
    }

    /// Attempts to receive without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] if nothing is buffered,
    /// [`TryRecvError::Disconnected`] if additionally every sender is gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut core = self.shared.core.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(value) = core.queue.pop_front() {
            if core.waiting_senders > 0 {
                self.shared.not_full.notify_one();
            }
            return Ok(value);
        }
        if core.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of elements currently buffered.
    pub fn len(&self) -> usize {
        self.shared
            .core
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// True if no element is currently buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn register(&self, waker: &Arc<SelectWaker>) {
        let mut core = self.shared.core.lock().unwrap_or_else(|e| e.into_inner());
        core.wakers.push(Arc::clone(waker));
    }

    fn unregister(&self, waker: &Arc<SelectWaker>) {
        let mut core = self.shared.core.lock().unwrap_or_else(|e| e.into_inner());
        core.wakers.retain(|w| !Arc::ptr_eq(w, waker));
    }

    /// A receive operation is ready when an element is buffered or the channel
    /// is disconnected (so the operation completes immediately either way).
    fn is_ready(&self) -> bool {
        let core = self.shared.core.lock().unwrap_or_else(|e| e.into_inner());
        !core.queue.is_empty() || core.senders == 0
    }
}

/// Object-safe view of a receiver used by [`Select`].
trait SelectTarget {
    fn target_is_ready(&self) -> bool;
    fn target_register(&self, waker: &Arc<SelectWaker>);
    fn target_unregister(&self, waker: &Arc<SelectWaker>);
}

impl<T> SelectTarget for Receiver<T> {
    fn target_is_ready(&self) -> bool {
        self.is_ready()
    }
    fn target_register(&self, waker: &Arc<SelectWaker>) {
        self.register(waker)
    }
    fn target_unregister(&self, waker: &Arc<SelectWaker>) {
        self.unregister(waker)
    }
}

/// Waits for one of several receive operations to become ready.
///
/// ```ignore
/// let mut select = Select::new();
/// let a_idx = select.recv(&a);
/// let _b_idx = select.recv(&b);
/// let op = select.select();
/// if op.index() == a_idx { let value = op.recv(&a); }
/// ```
#[derive(Default)]
pub struct Select<'a> {
    targets: Vec<&'a dyn SelectTarget>,
}

impl<'a> Select<'a> {
    /// Creates an empty selector.
    pub fn new() -> Self {
        Select {
            targets: Vec::new(),
        }
    }

    /// Registers a receive operation, returning its index.
    pub fn recv<T>(&mut self, receiver: &'a Receiver<T>) -> usize {
        self.targets.push(receiver);
        self.targets.len() - 1
    }

    fn poll(&self) -> Option<usize> {
        self.targets
            .iter()
            .position(|target| target.target_is_ready())
    }

    /// Blocks until one registered operation is ready and returns it.
    ///
    /// # Panics
    /// Panics if no operation was registered.
    pub fn select(&mut self) -> SelectedOperation {
        assert!(
            !self.targets.is_empty(),
            "select() requires at least one registered operation"
        );
        if let Some(index) = self.poll() {
            return SelectedOperation { index };
        }
        let waker = Arc::new(SelectWaker::default());
        for target in &self.targets {
            target.target_register(&waker);
        }
        let index = loop {
            // Re-poll after registration so an arrival between the first poll
            // and registration is not lost.
            if let Some(index) = self.poll() {
                break index;
            }
            waker.wait();
        };
        for target in &self.targets {
            target.target_unregister(&waker);
        }
        SelectedOperation { index }
    }
}

/// A ready operation returned by [`Select::select`].
#[derive(Debug)]
pub struct SelectedOperation {
    index: usize,
}

impl SelectedOperation {
    /// Index of the ready operation (in registration order).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Completes the operation on the receiver it was registered with.
    ///
    /// # Errors
    /// Returns [`RecvError`] if the channel is disconnected and drained.
    pub fn recv<T>(self, receiver: &Receiver<T>) -> Result<T, RecvError> {
        // This workspace attaches exactly one consumer per receiver, so after a
        // readiness signal the blocking recv returns immediately (either an
        // element or the disconnect error).
        receiver.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_send_recv_round_trip() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_blocks_when_full_until_a_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        let handle = thread::spawn(move || tx2.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn recv_timeout_reports_timeout_and_disconnect() {
        let (tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn select_returns_the_ready_receiver() {
        let (tx1, rx1) = bounded::<i32>(4);
        let (_tx2, rx2) = bounded::<i32>(4);
        tx1.send(42).unwrap();
        let mut select = Select::new();
        let idx1 = select.recv(&rx1);
        let _idx2 = select.recv(&rx2);
        let op = select.select();
        assert_eq!(op.index(), idx1);
        assert_eq!(op.recv(&rx1), Ok(42));
    }

    #[test]
    fn select_wakes_on_late_arrival() {
        let (tx1, rx1) = bounded::<i32>(4);
        let (_tx2, rx2) = bounded::<i32>(4);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            tx1.send(9).unwrap();
        });
        let mut select = Select::new();
        let idx1 = select.recv(&rx1);
        let _idx2 = select.recv(&rx2);
        let op = select.select();
        assert_eq!(op.index(), idx1);
        assert_eq!(op.recv(&rx1), Ok(9));
        handle.join().unwrap();
    }

    #[test]
    fn select_observes_disconnect() {
        let (tx, rx) = bounded::<i32>(1);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        let mut select = Select::new();
        select.recv(&rx);
        let op = select.select();
        assert_eq!(op.recv(&rx), Err(RecvError));
        handle.join().unwrap();
    }

    #[test]
    fn unbounded_never_blocks_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10_000 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10_000);
        assert_eq!(rx.recv(), Ok(0));
    }
}
