//! Offline stand-in for `smallvec`.
//!
//! Exposes the `SmallVec<[T; N]>` generic shape used in this workspace but
//! stores elements in a plain `Vec` (no inline storage). The inline capacity
//! `N` is honoured as the initial heap capacity, so `SmallVec::new()` on a
//! hot path still avoids repeated early reallocation.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Types usable as the backing-array parameter of [`SmallVec`].
pub trait Array {
    /// Element type of the array.
    type Item;
    /// Inline capacity of the array.
    const CAPACITY: usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    const CAPACITY: usize = N;
}

/// A growable vector with the `smallvec` API shape (heap-backed in this shim).
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector (no allocation until the first push).
    pub fn new() -> Self {
        SmallVec { inner: Vec::new() }
    }

    /// Creates an empty vector with at least `cap` capacity.
    pub fn with_capacity(cap: usize) -> Self {
        SmallVec {
            inner: Vec::with_capacity(cap),
        }
    }

    /// The inline capacity of the backing array parameter.
    pub fn inline_size(&self) -> usize {
        A::CAPACITY
    }

    /// Appends an element.
    pub fn push(&mut self, value: A::Item) {
        if self.inner.capacity() == 0 && A::CAPACITY > 0 {
            self.inner.reserve(A::CAPACITY);
        }
        self.inner.push(value);
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<A::Item> {
        self.inner.pop()
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Moves all elements of `other` into `self`.
    pub fn append(&mut self, other: &mut Self) {
        self.inner.append(&mut other.inner);
    }

    /// Consumes the vector, returning the underlying `Vec`.
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }

    /// Removes the given range and yields the removed elements.
    pub fn drain<R: std::ops::RangeBounds<usize>>(
        &mut self,
        range: R,
    ) -> std::vec::Drain<'_, A::Item> {
        self.inner.drain(range)
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    fn deref(&self) -> &[A::Item] {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    fn deref_mut(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec {
            inner: Vec::from_iter(iter),
        }
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec {
            inner: self.inner.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_iterate() {
        let mut v: SmallVec<[i32; 4]> = SmallVec::new();
        assert_eq!(v.inline_size(), 4);
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.iter().sum::<i32>(), 3);
        assert_eq!(v.pop(), Some(2));
        v.extend([5, 6]);
        let all: Vec<i32> = v.into_iter().collect();
        assert_eq!(all, vec![1, 5, 6]);
    }

    #[test]
    fn drain_and_clear() {
        let mut v: SmallVec<[u8; 2]> = (0u8..5).collect();
        let drained: Vec<u8> = v.drain(..).collect();
        assert_eq!(drained.len(), 5);
        assert!(v.is_empty());
    }
}
