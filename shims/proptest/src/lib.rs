//! Offline stand-in for the subset of `proptest` used by this workspace's
//! property tests: integer-range and `any::<T>()` strategies, `prop_map`,
//! tuple and `collection::vec` composition, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Generation is deterministic: case `i` of test `name` always sees the same
//! inputs (seeded from a hash of the test name and the case index), so CI
//! failures reproduce locally without shrink files.

use std::ops::Range;

/// Deterministic generator driving strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Produces the next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map_fn`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map_fn: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            inner: self,
            map_fn,
        }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map_fn: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map_fn)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "cannot sample an empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy generating any value of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Glob-import of the names property tests need.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines deterministic property tests (see crate docs for the subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "property `{}` failed at case {}: {}",
                            stringify!($name),
                            case,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a property body, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = (0u32..100, crate::collection::vec(any::<bool>(), 1..8));
        let mut rng_a = crate::TestRng::for_case("t", 3);
        let mut rng_b = crate::TestRng::for_case("t", 3);
        assert_eq!(strat.generate(&mut rng_a), strat.generate(&mut rng_b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..50, mut v in crate::collection::vec(0u32..3, 0..10)) {
            prop_assert!((5..50).contains(&x));
            v.push(0);
            prop_assert!(v.iter().all(|&e| e <= 3));
        }

        #[test]
        fn mapped_strategies_apply_the_function(doubled in (1u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }
}
