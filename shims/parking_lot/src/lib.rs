//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the subset of the `parking_lot` API used in this workspace:
//! `Mutex::lock` / `RwLock::read` / `RwLock::write` return guards directly
//! (no `Result`); a poisoned std lock is recovered transparently, which is
//! behaviourally equivalent to parking_lot's absence of poisoning.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never fail.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
