//! Offline stand-in for the subset of `criterion` used by `benches/micro.rs`:
//! `Criterion`, benchmark groups, `Bencher::iter`, `BenchmarkId`, `black_box`
//! and the `criterion_group!` / `criterion_main!` macros. Reports a simple
//! mean ns/iter per benchmark instead of criterion's statistical analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: F) {
        run_one("", name, 20, &mut routine);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().label, self.sample_size, &mut routine);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let label = id.into().label;
        run_one(
            &self.name,
            &label,
            self.sample_size,
            &mut |b: &mut Bencher| routine(b, input),
        );
        self
    }

    /// Finishes the group (kept for API parity; reporting happens per-bench).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier combining a function name with a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier consisting only of a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timer handed to the benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times repeated executions of `routine` and records the samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate the per-sample iteration count so one sample takes ~2 ms.
        let calibration_start = Instant::now();
        black_box(routine());
        let once = calibration_start.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let sample_count = self.samples.capacity();
        for _ in 0..sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, label: &str, samples: usize, routine: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: 1,
    };
    routine(&mut bencher);
    let full_name = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if bencher.samples.is_empty() {
        println!("bench {full_name}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let iters = bencher.iters_per_sample.max(1) * bencher.samples.len() as u64;
    let mean_ns = total.as_nanos() as f64 / iters as f64;
    println!("bench {full_name}: {mean_ns:.1} ns/iter ({iters} iters)");
}

/// Bundles benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($function:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Emits a `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $($group_name();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &v| {
            b.iter(|| v * 2)
        });
        group.finish();
        assert!(ran > 0);
    }
}
