//! Shard-equivalence: key-partitioned parallel execution must be invisible in the
//! results. A keyed aggregate (or equi-key join) run with `instances(1)` and
//! `instances(N)` must produce the *identical* sink-tuple stream — same tuples, same
//! order — and, under GeneaLog, identical per-alert contribution sets.
//!
//! GeneaLog tuple *ids* are allocated from a shared atomic counter whose interleaving
//! depends on thread scheduling, so the comparisons here use timestamps, payloads and
//! contribution sets — the id is the one meta-attribute that legitimately varies.

use std::collections::BTreeSet;

use proptest::prelude::*;

use genealog::prelude::*;
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::parallel::Parallelism;
use genealog_spe::provenance::NoProvenance;
use genealog_spe::Query;

type Key = u32;
type Reading = (Key, i64);
/// `(ts_millis, debug-rendered payload)` — the byte-level identity of a sink tuple.
type SinkTuple = (u64, String);
/// A sink tuple plus the canonical set of source tuples contributing to it.
type Lineage = (SinkTuple, BTreeSet<SinkTuple>);

/// Runs `source -> sharded_aggregate(instances) -> sink` under GeneaLog and returns
/// the ordered sink stream plus the per-sink-tuple contribution sets.
fn run_gl_sharded_sum(
    reports: &[(Timestamp, Reading)],
    instances: usize,
) -> (Vec<SinkTuple>, Vec<Lineage>) {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("readings", VecSource::new(reports.to_vec()));
    let sums = q.sharded_aggregate(
        "sum",
        src,
        WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap(),
        |r: &Reading| r.0,
        |w: &WindowView<'_, Key, Reading, GlMeta>| (*w.key, w.payloads().map(|p| p.1).sum::<i64>()),
        |o: &Reading| o.0,
        Parallelism::instances(instances),
    );
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", sums);
    let sink = q.collecting_sink("sink", out);
    q.deploy().unwrap().wait().unwrap();

    let tuples: Vec<SinkTuple> = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    let mut lineage: Vec<Lineage> = provenance
        .assignments()
        .iter()
        .map(|a| {
            let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
            let sources: BTreeSet<SinkTuple> = a
                .source_records::<Reading>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    (tuples, lineage)
}

/// Strategy: a timestamp-ordered stream of keyed readings with random keys, values
/// and (possibly repeating) timestamp gaps.
fn keyed_readings() -> impl Strategy<Value = Vec<(Timestamp, Reading)>> {
    proptest::collection::vec((0u32..8, 0u64..200, 0u64..5), 1..80).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(key, value, gap)| {
                ts += gap; // non-decreasing; repeated timestamps exercise tie-breaking
                (Timestamp::from_secs(ts), (key, value as i64 - 100))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole guarantee: for random key/timestamp interleavings, a keyed
    /// aggregate with 4 shards produces the identical sink stream and identical
    /// GeneaLog contribution sets as the 1-shard plan.
    #[test]
    fn sharded_aggregate_is_equivalent_across_shard_counts(reports in keyed_readings()) {
        let (tuples_1, lineage_1) = run_gl_sharded_sum(&reports, 1);
        let (tuples_4, lineage_4) = run_gl_sharded_sum(&reports, 4);
        // Sink stream and contribution sets must not depend on the shard count.
        prop_assert_eq!(tuples_1, tuples_4);
        prop_assert_eq!(lineage_1, lineage_4);
    }
}

/// The sharded plan must also match the plain single-instance `aggregate` operator:
/// partition + shards + merge is a drop-in replacement, not a different semantics.
#[test]
fn sharded_aggregate_matches_plain_aggregate() {
    let reports: Vec<(Timestamp, Reading)> = (0..200u64)
        .map(|i| (Timestamp::from_secs(i / 4), ((i % 7) as Key, i as i64)))
        .collect();
    let spec = WindowSpec::new(Duration::from_secs(12), Duration::from_secs(6)).unwrap();

    let run_plain = || {
        let mut q = Query::new(NoProvenance);
        let src = q.source("readings", VecSource::new(reports.clone()));
        let sums = q.aggregate(
            "sum",
            src,
            spec,
            |r: &Reading| r.0,
            |w: &WindowView<'_, Key, Reading, ()>| (*w.key, w.payloads().map(|p| p.1).sum::<i64>()),
        );
        let out = q.collecting_sink("sink", sums);
        q.deploy().unwrap().wait().unwrap();
        out.tuples()
            .iter()
            .map(|t| (t.ts.as_millis(), t.data))
            .collect::<Vec<_>>()
    };
    let run_sharded = |instances: usize| {
        let mut q = Query::new(NoProvenance);
        let src = q.source("readings", VecSource::new(reports.clone()));
        let sums = q.sharded_aggregate(
            "sum",
            src,
            spec,
            |r: &Reading| r.0,
            |w: &WindowView<'_, Key, Reading, ()>| (*w.key, w.payloads().map(|p| p.1).sum::<i64>()),
            |o: &Reading| o.0,
            Parallelism::instances(instances),
        );
        let out = q.collecting_sink("sink", sums);
        q.deploy().unwrap().wait().unwrap();
        out.tuples()
            .iter()
            .map(|t| (t.ts.as_millis(), t.data))
            .collect::<Vec<_>>()
    };

    let plain = run_plain();
    assert!(!plain.is_empty());
    for instances in [1, 2, 4] {
        assert_eq!(
            plain,
            run_sharded(instances),
            "{instances}-shard plan must equal the single-instance operator"
        );
    }
}

/// Equi-key joins shard the same way: partition both sides on the key, join inside
/// each shard, reunify — identical output stream for every shard count.
#[test]
fn sharded_join_is_equivalent_across_shard_counts() {
    let left: Vec<(Timestamp, Reading)> = (0..60u64)
        .map(|i| (Timestamp::from_secs(i), ((i % 5) as Key, i as i64)))
        .collect();
    let right: Vec<(Timestamp, Reading)> = (0..60u64)
        .map(|i| (Timestamp::from_secs(i), ((i % 5) as Key, 1_000 + i as i64)))
        .collect();

    let run = |instances: usize| {
        let mut q = Query::new(NoProvenance);
        let l = q.source("left", VecSource::new(left.clone()));
        let r = q.source("right", VecSource::new(right.clone()));
        let joined = q.sharded_join(
            "match",
            l,
            r,
            Duration::from_secs(3),
            |l: &Reading| l.0,
            |r: &Reading| r.0,
            |o: &(Key, i64, i64)| o.0,
            |l: &Reading, r: &Reading| l.0 == r.0,
            |l: &Reading, r: &Reading| (l.0, l.1, r.1),
            Parallelism::instances(instances),
        );
        let out = q.collecting_sink("sink", joined);
        q.deploy().unwrap().wait().unwrap();
        out.tuples()
            .iter()
            .map(|t| (t.ts.as_millis(), t.data))
            .collect::<Vec<_>>()
    };

    let one = run(1);
    assert!(!one.is_empty());
    assert_eq!(one, run(2));
    assert_eq!(one, run(4));
}

/// GeneaLog chain pointers survive the exchange: the provenance of a sharded
/// aggregate's outputs is exactly the window contents, same as unsharded.
#[test]
fn sharded_aggregate_contribution_sets_are_the_window_contents() {
    // 2 keys, one reading per key per second; tumbling 4s windows -> every window
    // holds exactly 4 readings of its own key.
    let reports: Vec<(Timestamp, Reading)> = (0..32u64)
        .map(|i| (Timestamp::from_secs(i / 2), ((i % 2) as Key, i as i64)))
        .collect();
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("readings", VecSource::new(reports));
    let counts = q.sharded_aggregate(
        "count",
        src,
        WindowSpec::tumbling(Duration::from_secs(4)).unwrap(),
        |r: &Reading| r.0,
        |w: &WindowView<'_, Key, Reading, GlMeta>| (*w.key, w.len() as i64),
        |o: &Reading| o.0,
        Parallelism::instances(2),
    );
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", counts);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();

    let assignments = provenance.assignments();
    assert!(!assignments.is_empty());
    for a in &assignments {
        assert_eq!(
            a.source_count() as i64,
            a.sink_data.1,
            "every window tuple contributes exactly once"
        );
        for record in a.source_records::<Reading>() {
            assert_eq!(
                record.data.0, a.sink_data.0,
                "contributing tuples carry the window's own key"
            );
        }
    }
}
