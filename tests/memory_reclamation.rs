//! Challenge C2: GeneaLog must not retain source tuples that do not contribute to any
//! sink tuple. Because the upstream pointers are reference-counted, a source tuple's
//! memory is reclaimed as soon as no in-flight or sink tuple references it — in
//! contrast to the baseline, which retains every source tuple it has ever seen.

use std::sync::Arc;

use genealog::prelude::*;
use genealog_baseline::AriadneBaseline;
use genealog_spe::Query;
use genealog_workloads::linear_road::{LinearRoadConfig, LinearRoadGenerator};
use genealog_workloads::queries::build_q1;

fn lr_config() -> LinearRoadConfig {
    LinearRoadConfig {
        cars: 50,
        rounds: 30,
        ..LinearRoadConfig::default()
    }
}

#[test]
fn genealog_keeps_only_contributing_sources_alive() {
    let config = lr_config();
    let generator = LinearRoadGenerator::new(config);
    let breakdown_cars = generator.breakdown_cars().len() as u64;

    let mut q = GlQuery::new(GeneaLog::new());
    let reports = q.source("lr", generator);
    let alerts = build_q1(&mut q, reports);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();

    // After the run, the only tuples still reachable are those referenced by the
    // collected provenance. Take weak handles to them and drop the collector: they
    // must be reclaimed immediately.
    let assignments = provenance.assignments();
    assert!(!assignments.is_empty());
    let alerts_with_provenance = assignments.len() as u64;
    assert!(alerts_with_provenance >= breakdown_cars);

    let weak_sources: Vec<std::sync::Weak<dyn genealog::ProvNode>> = assignments
        .iter()
        .flat_map(|a| a.sources.iter().map(Arc::downgrade))
        .collect();
    assert!(weak_sources.iter().all(|w| w.upgrade().is_some()));

    drop(assignments);
    drop(provenance);
    assert!(
        weak_sources.iter().all(|w| w.upgrade().is_none()),
        "source tuples must be reclaimed once nothing references their provenance"
    );
}

#[test]
fn genealog_retains_nothing_when_no_alerts_fire() {
    // A query whose filter never matches: every source tuple is non-contributing, so
    // GeneaLog must not keep any of them alive after the run.
    let mut q = GlQuery::new(GeneaLog::new());
    let reports = q.source("lr", LinearRoadGenerator::new(lr_config()));
    let none = q.filter("never", reports, |_| false);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", none);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();
    assert_eq!(provenance.unfolded_count(), 0);
    assert!(provenance.assignments().is_empty());
}

#[test]
fn baseline_retains_every_source_tuple_even_without_alerts() {
    // The same no-alert query under the baseline: the source store still holds every
    // source tuple, which is exactly the memory behaviour the paper criticises.
    let config = lr_config();
    let baseline = AriadneBaseline::new();
    let mut q = Query::new(baseline.clone());
    let reports = q.source("lr", LinearRoadGenerator::new(config));
    let none = q.filter("never", reports, |_| false);
    let out = q.collecting_sink("alerts", none);
    q.deploy().unwrap().wait().unwrap();
    assert!(out.is_empty());
    assert_eq!(
        baseline.store().len() as u64,
        config.total_reports(),
        "the baseline retains the entire source stream"
    );
}

#[test]
fn window_tuples_are_released_after_their_windows_close() {
    // Aggregate over a sliding window, never raising alerts: the window store must not
    // accumulate tuples beyond the open windows (the engine purges closed windows, and
    // GeneaLog's pointers do not resurrect them).
    let mut q = GlQuery::new(GeneaLog::new());
    let reports = q.source("lr", LinearRoadGenerator::new(lr_config()));
    let counts = genealog_workloads::queries::q1_stage1(&mut q, reports);
    // Impossible threshold: no alert is ever produced downstream.
    let alerts = q.filter("impossible", counts, |c| c.count > 1_000);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    q.discard(out);
    let report = q.deploy().unwrap().wait().unwrap();
    assert!(report.source_tuples() > 0);
    assert_eq!(provenance.unfolded_count(), 0);
}
