//! Determinism: the engine's timestamp-driven execution (§2) makes both the query
//! results and the captured provenance independent of thread scheduling, channel
//! capacities and repeated runs.

use std::collections::BTreeSet;

use genealog::prelude::*;
use genealog_spe::QueryConfig;
use genealog_workloads::linear_road::{LinearRoadConfig, LinearRoadGenerator};
use genealog_workloads::queries::{build_q1, build_q4};
use genealog_workloads::smart_grid::{SmartGridConfig, SmartGridGenerator};
use genealog_workloads::types::PositionReport;

type AlertKey = (u64, String);
type ProvenanceSet = BTreeSet<(u64, String)>;

fn run_q1_once(channel_capacity: usize) -> Vec<(AlertKey, ProvenanceSet)> {
    run_q1_with(channel_capacity, BatchConfig::default())
}

fn run_q1_with(channel_capacity: usize, batch: BatchConfig) -> Vec<(AlertKey, ProvenanceSet)> {
    let config = LinearRoadConfig {
        cars: 40,
        rounds: 30,
        ..LinearRoadConfig::default()
    };
    let mut q = GlQuery::with_config(
        GeneaLog::new(),
        QueryConfig {
            channel_capacity,
            batch,
            ..QueryConfig::default()
        },
    );
    let reports = q.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q1(&mut q, reports);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();

    let mut result: Vec<(AlertKey, ProvenanceSet)> = provenance
        .assignments()
        .iter()
        .map(|a| {
            let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
            let sources = a
                .source_records::<PositionReport>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect();
            (key, sources)
        })
        .collect();
    result.sort();
    result
}

#[test]
fn q1_alerts_and_provenance_are_identical_across_runs() {
    let first = run_q1_once(1024);
    for _ in 0..3 {
        assert_eq!(run_q1_once(1024), first);
    }
    assert!(!first.is_empty());
}

#[test]
fn q1_results_do_not_depend_on_channel_capacity() {
    // Tiny channels force constant back-pressure and very different interleavings;
    // results must not change.
    let large = run_q1_once(4096);
    let tiny = run_q1_once(2);
    assert_eq!(large, tiny);
}

#[test]
fn q1_results_do_not_depend_on_batch_size() {
    // The batched transport must be a pure transport optimisation: alerts and
    // their provenance are identical whether elements travel one by one
    // (the unbatched seed behaviour), in small batches or in large batches.
    let unbatched = run_q1_with(1024, BatchConfig::unbatched());
    let small = run_q1_with(1024, BatchConfig::with_size(7));
    let large = run_q1_with(1024, BatchConfig::with_size(256));
    assert_eq!(unbatched, small);
    assert_eq!(unbatched, large);
    assert!(!unbatched.is_empty());
}

#[test]
fn batching_composes_with_tiny_channels() {
    // Large batches through capacity-1 channels force a flush-blocked producer on
    // every send; determinism must survive the resulting interleavings.
    let reference = run_q1_with(1024, BatchConfig::unbatched());
    let stressed = run_q1_with(1, BatchConfig::with_size(64));
    assert_eq!(reference, stressed);
}

#[test]
fn q4_join_results_are_stable_across_runs() {
    let config = SmartGridConfig {
        meters: 30,
        days: 2,
        blackout_day: 0,
        anomaly_day: 1,
        ..SmartGridConfig::default()
    };
    let run = || {
        let mut q = GlQuery::new(GeneaLog::new());
        let readings = q.source("sg", SmartGridGenerator::new(config));
        let alerts = build_q4(&mut q, readings);
        let out = q.collecting_sink("alerts", alerts);
        q.deploy().unwrap().wait().unwrap();
        let mut alerts: Vec<(u64, u32, u32)> = out
            .tuples()
            .iter()
            .map(|t| (t.ts.as_millis(), t.data.meter_id, t.data.consumption_diff))
            .collect();
        alerts.sort_unstable();
        alerts
    };
    let first = run();
    assert_eq!(run(), first);
    assert_eq!(run(), first);
    assert!(!first.is_empty());
}

#[test]
fn ordered_sink_output_is_timestamp_sorted() {
    let config = LinearRoadConfig::default();
    let mut q = GlQuery::new(GeneaLog::new());
    let reports = q.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q1(&mut q, reports);
    let out = q.collecting_sink("alerts", alerts);
    q.deploy().unwrap().wait().unwrap();
    let timestamps: Vec<u64> = out.tuples().iter().map(|t| t.ts.as_millis()).collect();
    let mut sorted = timestamps.clone();
    sorted.sort_unstable();
    assert_eq!(timestamps, sorted);
}
