//! Inter-process provenance (§6): the provenance assembled by the multi-stream
//! unfolder on the third SPE instance of a distributed deployment must equal the
//! provenance captured intra-process, which in turn equals the oracle's ground truth.

use std::collections::BTreeSet;

use genealog::prelude::*;
use genealog_distributed::{deploy_distributed_genealog, NetworkConfig};
use genealog_spe::operator::source::SourceConfig;
use genealog_workloads::linear_road::{LinearRoadConfig, LinearRoadGenerator};
use genealog_workloads::oracle::q1_oracle;
use genealog_workloads::queries::{
    build_q1, q1_provenance_window, q1_stage1, q1_stage2, q3_provenance_window, q3_stage1,
    q3_stage2,
};
use genealog_workloads::smart_grid::{SmartGridConfig, SmartGridGenerator};
use genealog_workloads::types::{
    BlackoutAlert, DailyConsumption, MeterReading, PositionReport, StoppedCarCount,
};

type ProvenanceSet = BTreeSet<(u64, String)>;

fn lr_config() -> LinearRoadConfig {
    LinearRoadConfig {
        cars: 40,
        rounds: 30,
        ..LinearRoadConfig::default()
    }
}

#[test]
fn distributed_q1_provenance_equals_intra_process_and_oracle() {
    let config = lr_config();

    // Intra-process GeneaLog provenance.
    let mut q = GlQuery::new(GeneaLog::new());
    let reports = q.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q1(&mut q, reports);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();
    let intra: BTreeSet<ProvenanceSet> = provenance
        .assignments()
        .iter()
        .map(|a| {
            a.source_records::<PositionReport>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect()
        })
        .collect();

    // Distributed (three-instance) GeneaLog provenance.
    let outcome =
        deploy_distributed_genealog::<_, StoppedCarCount, StoppedCarCount, PositionReport, _, _>(
            "q1",
            LinearRoadGenerator::new(config),
            SourceConfig::default(),
            q1_stage1,
            q1_stage2,
            q1_provenance_window(),
            NetworkConfig::unlimited(),
        )
        .expect("distributed deployment");
    let distributed: BTreeSet<ProvenanceSet> = outcome
        .provenance
        .iter()
        .map(|record| {
            record
                .sources
                .iter()
                .map(|s| (s.ts.as_millis(), format!("{:?}", s.data)))
                .collect()
        })
        .collect();

    // Oracle ground truth.
    let oracle: BTreeSet<ProvenanceSet> = q1_oracle(&LinearRoadGenerator::to_vec(config))
        .iter()
        .map(|alert| {
            alert
                .sources
                .iter()
                .map(|(ts, r)| (ts.as_millis(), format!("{r:?}")))
                .collect()
        })
        .collect();

    assert!(!intra.is_empty());
    assert_eq!(intra, oracle);
    assert_eq!(distributed, oracle);
}

#[test]
fn distributed_q3_resolves_all_192_sources_per_blackout() {
    let config = SmartGridConfig {
        meters: 30,
        days: 3,
        ..SmartGridConfig::default()
    };
    let outcome =
        deploy_distributed_genealog::<_, DailyConsumption, BlackoutAlert, MeterReading, _, _>(
            "q3",
            SmartGridGenerator::new(config),
            SourceConfig {
                // One watermark per day of readings keeps progress flowing without
                // flooding the simulated links with per-tuple watermark frames.
                watermark_every: 24,
                ..SourceConfig::default()
            },
            q3_stage1,
            q3_stage2,
            q3_provenance_window(),
            NetworkConfig::unlimited(),
        )
        .expect("distributed deployment");

    assert_eq!(outcome.alerts.len(), 1);
    assert_eq!(outcome.provenance.len(), 1);
    let record = &outcome.provenance[0];
    assert_eq!(record.sink_data.zero_meters, config.blackout_meters);
    assert_eq!(record.sources.len(), 192, "8 meters x 24 readings");
    assert!(record.sources.iter().all(|s| s.data.consumption == 0));
    // GeneaLog only ships provenance (not the source stream) between instances: the
    // provenance links carry far fewer bytes than shipping every reading (at the
    // observed ~40 bytes of wire framing per tuple) would need.
    let raw_stream_bytes = config.total_readings() * 40;
    assert!(
        outcome.provenance_link_bytes < raw_stream_bytes,
        "provenance links carried {} bytes, raw stream would be ~{} bytes",
        outcome.provenance_link_bytes,
        raw_stream_bytes
    );
}

#[test]
fn distributed_run_reports_per_instance_statistics() {
    let config = lr_config();
    let outcome =
        deploy_distributed_genealog::<_, StoppedCarCount, StoppedCarCount, PositionReport, _, _>(
            "q1",
            LinearRoadGenerator::new(config),
            SourceConfig::default(),
            q1_stage1,
            q1_stage2,
            q1_provenance_window(),
            NetworkConfig::default(),
        )
        .expect("distributed deployment");
    assert_eq!(outcome.reports.len(), 3, "three SPE instances");
    assert_eq!(outcome.source_tuples(), config.total_reports());
    assert!(
        outcome.reports[0].source_tuples() > 0,
        "sources live on instance 1"
    );
    assert_eq!(outcome.reports[1].source_tuples(), 0);
    assert!(outcome.sink_stats.tuple_count() > 0);
    assert!(outcome.total_network_bytes() > 0);
}
