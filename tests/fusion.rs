//! Fusion-equivalence: collapsing a stateless operator chain into one thread must be
//! invisible in the results. A `filter → map → map` pipeline run with
//! `QueryConfig::fusion` on and off must produce the *identical* sink-tuple stream —
//! same tuples, same order — and, under GeneaLog, identical per-sink-tuple
//! contribution sets. The same holds when the fused chain feeds a key-partitioned
//! aggregate: a fused 4-shard plan equals an unfused, unbatched 1-shard plan.
//!
//! This mirrors `tests/parallel_execution.rs`: GeneaLog tuple *ids* are allocated
//! from a shared atomic counter whose interleaving depends on thread scheduling, so
//! the comparisons use timestamps, payloads and contribution sets — the id is the one
//! meta-attribute that legitimately varies.

use std::collections::BTreeSet;

use proptest::prelude::*;

use genealog::prelude::*;
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::parallel::Parallelism;
use genealog_spe::provenance::NoProvenance;
use genealog_spe::{Query, QueryConfig};

type Key = u32;
type Reading = (Key, i64);
/// `(ts_millis, debug-rendered payload)` — the byte-level identity of a sink tuple.
type SinkTuple = (u64, String);
/// A sink tuple plus the canonical set of source tuples contributing to it.
type Lineage = (SinkTuple, BTreeSet<SinkTuple>);

/// Runs `source -> filter -> map -> map -> sink` under GeneaLog with or without
/// fusion and returns the ordered sink stream plus the contribution sets.
fn run_gl_chain(reports: &[(Timestamp, Reading)], fusion: bool) -> (Vec<SinkTuple>, Vec<Lineage>) {
    let mut q = GlQuery::with_config(GeneaLog::new(), QueryConfig::default().with_fusion(fusion));
    let src = q.source("readings", VecSource::new(reports.to_vec()));
    let kept = q.filter("keep", src, |r: &Reading| r.1 >= 0);
    let scaled = q.map_one("scale", kept, |r: &Reading| (r.0, r.1 * 3));
    let tagged = q.map_one("tag", scaled, |r: &Reading| (r.0, r.1 + 7));
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", tagged);
    let sink = q.collecting_sink("sink", out);
    q.deploy().unwrap().wait().unwrap();

    let tuples: Vec<SinkTuple> = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    let mut lineage: Vec<Lineage> = provenance
        .assignments()
        .iter()
        .map(|a| {
            let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
            let sources: BTreeSet<SinkTuple> = a
                .source_records::<Reading>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    (tuples, lineage)
}

/// Runs `source -> filter -> map -> sharded_aggregate(instances) -> sink` under
/// GeneaLog, with fusion/batching either both on (the optimised plan) or both off
/// (the per-element seed transport), and returns sink stream plus lineage.
fn run_gl_chain_into_shards(
    reports: &[(Timestamp, Reading)],
    fusion: bool,
    instances: usize,
) -> (Vec<SinkTuple>, Vec<Lineage>) {
    let config = if fusion {
        QueryConfig::default().with_fusion(true)
    } else {
        QueryConfig::default().unbatched()
    };
    let mut q = GlQuery::with_config(GeneaLog::new(), config);
    let src = q.source("readings", VecSource::new(reports.to_vec()));
    let kept = q.filter("keep", src, |r: &Reading| r.1 % 5 != 0);
    let scaled = q.map_one("scale", kept, |r: &Reading| (r.0, r.1 * 2));
    let sums = q.sharded_aggregate(
        "sum",
        scaled,
        WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap(),
        |r: &Reading| r.0,
        |w: &WindowView<'_, Key, Reading, GlMeta>| (*w.key, w.payloads().map(|p| p.1).sum::<i64>()),
        |o: &Reading| o.0,
        Parallelism::instances(instances),
    );
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", sums);
    let sink = q.collecting_sink("sink", out);
    q.deploy().unwrap().wait().unwrap();

    let tuples: Vec<SinkTuple> = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    let mut lineage: Vec<Lineage> = provenance
        .assignments()
        .iter()
        .map(|a| {
            let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
            let sources: BTreeSet<SinkTuple> = a
                .source_records::<Reading>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    (tuples, lineage)
}

/// Strategy: a timestamp-ordered stream of keyed readings with random keys, values
/// and (possibly repeating) timestamp gaps.
fn keyed_readings() -> impl Strategy<Value = Vec<(Timestamp, Reading)>> {
    proptest::collection::vec((0u32..8, 0u64..200, 0u64..5), 1..80).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(key, value, gap)| {
                ts += gap; // non-decreasing; repeated timestamps exercise tie-breaking
                (Timestamp::from_secs(ts), (key, value as i64 - 100))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole guarantee: for random streams, the fused stateless chain
    /// produces the identical sink stream and identical GeneaLog contribution sets
    /// as the thread-per-operator plan.
    #[test]
    fn fused_chain_is_equivalent_to_unfused(reports in keyed_readings()) {
        let (tuples_unfused, lineage_unfused) = run_gl_chain(&reports, false);
        let (tuples_fused, lineage_fused) = run_gl_chain(&reports, true);
        prop_assert_eq!(tuples_unfused, tuples_fused);
        prop_assert_eq!(lineage_unfused, lineage_fused);
    }

    /// Fusion composes with sharding and batching: a fused, batched, 4-shard plan
    /// equals the unfused, unbatched, single-instance plan — the whole optimisation
    /// stack is invisible in results and provenance.
    #[test]
    fn fused_sharded_plan_equals_unbatched_single_instance(reports in keyed_readings()) {
        let (tuples_base, lineage_base) = run_gl_chain_into_shards(&reports, false, 1);
        let (tuples_opt, lineage_opt) = run_gl_chain_into_shards(&reports, true, 4);
        prop_assert_eq!(tuples_base, tuples_opt);
        prop_assert_eq!(lineage_base, lineage_opt);
    }
}

/// NP smoke check (no provenance): fused and unfused plans agree tuple-for-tuple on
/// a deterministic input, including a flat-map stage producing 0..2 outputs per
/// input tuple.
#[test]
fn fused_flat_map_chain_matches_unfused() {
    let run = |fusion: bool| {
        let mut q = Query::with_config(NoProvenance, QueryConfig::default().with_fusion(fusion));
        let src = q.source(
            "numbers",
            VecSource::with_period((0..100i64).collect(), 250),
        );
        let kept = q.filter("keep", src, |x| x % 3 != 0);
        let expanded = q.map("expand", kept, |x| {
            if x % 2 == 0 {
                vec![*x, -*x]
            } else {
                vec![]
            }
        });
        let shifted = q.map_one("shift", expanded, |x| x + 1);
        let out = q.collecting_sink("sink", shifted);
        q.deploy().unwrap().wait().unwrap();
        out.tuples()
            .iter()
            .map(|t| (t.ts.as_millis(), t.data))
            .collect::<Vec<_>>()
    };
    let unfused = run(false);
    let fused = run(true);
    assert!(!fused.is_empty());
    assert_eq!(unfused, fused);
}
