//! The live observability plane, end to end: a GeneaLog query whose sharded
//! aggregate mixes a local shard with remote SPE instances runs with the embedded
//! control endpoint attached, and we pin — over real HTTP against the running
//! server — that
//!
//! * `/metrics` serves the Prometheus exposition of the *whole* spanning shard
//!   group (remote instances ship registry deltas over their return links), with
//!   per-operator tuple counters, queue-depth gauges and sink-latency histogram
//!   quantiles agreeing exactly with the final distributed [`QueryReport`];
//! * `/provenance/{sink_tuple_id}` returns exactly the oracle-pinned GeneaLog
//!   contribution set of that sink tuple;
//! * `/healthz` and `/topology.dot` serve liveness and the deployed graph.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use genealog::prelude::*;
use genealog_control::ControlPlane;
use genealog_distributed::deployment::{logical_shard_provenance_sink, remote_shard_group_gl};
use genealog_distributed::NetworkConfig;
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::query::{QueryConfig, ShardPlacement};

type Key = u32;
type Reading = (Key, i64);

/// A hand-rolled HTTP GET against the control endpoint (no client dependency).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: control\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

/// The value of one exposition line, e.g. `metric("...", "operator=\"sum\"")`.
fn metric_value(exposition: &str, name: &str, labels: &str) -> Option<u64> {
    let needle = format!("{name}{{{labels}}} ");
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(&needle))
        .and_then(|v| v.parse().ok())
}

fn window_spec() -> WindowSpec {
    WindowSpec::tumbling(Duration::from_secs(60)).unwrap()
}

fn sum_key(r: &Reading) -> Key {
    r.0
}

fn sum_window(w: &WindowView<'_, Key, Reading, GlMeta>) -> Reading {
    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
}

/// 12 readings, one every 10 s, keys cycling 0,1,2 — so the 60 s tumbling windows
/// and their per-key contribution sets are computable by hand.
fn readings() -> Vec<(Timestamp, Reading)> {
    (0..12u64)
        .map(|t| (Timestamp::from_secs(t * 10), ((t % 3) as Key, t as i64)))
        .collect()
}

/// The oracle: per (window sum) sink payload, the set of contributing source
/// readings as `(ts_secs, value)`.
fn oracle() -> Vec<(Reading, BTreeSet<(u64, i64)>)> {
    let mut expected = Vec::new();
    for window in 0..2u64 {
        for key in 0..3u32 {
            let sources: BTreeSet<(u64, i64)> = (0..12u64)
                .filter(|t| t * 10 / 60 == window && (t % 3) as u32 == key)
                .map(|t| (t * 10, t as i64))
                .collect();
            let sum = sources.iter().map(|(_, v)| v).sum::<i64>();
            expected.push(((key, sum), sources));
        }
    }
    expected
}

#[test]
fn control_endpoint_serves_live_metrics_and_provenance_of_a_spanning_query() {
    // Shards 1 and 2 of the aggregate run on remote SPE instances; shard 0 stays
    // local. The remote instances' registries stream back over the shared links.
    let shards = remote_shard_group_gl::<Reading, Reading, _>(
        "sum",
        2,
        1,
        NetworkConfig::unlimited(),
        QueryConfig::default(),
        move |rq, _i, input| rq.aggregate("sum", input, window_spec(), sum_key, sum_window),
    )
    .unwrap();
    let mut placements = vec![ShardPlacement::Local];
    placements.extend(shards.placements);
    let mut group = shards.group;

    let plan = GlPlan::new(GeneaLog::for_instance(0));
    let sums = plan
        .source("readings", VecSource::new(readings()))
        .aggregate("sum", window_spec(), sum_key, sum_window, |o: &Reading| o.0)
        .place(placements);
    let (out, provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
        sums,
        "prov",
        shards.provenance_links,
        Duration::from_hours(24),
    );
    let sink = out.collecting_sink("sink");

    // Lower by hand: the control plane needs the registry, the DOT rendering and
    // the analyzer's report before deployment consumes the query.
    let analyzed = plan.analyze().unwrap();
    assert!(
        !analyzed.report.has_errors(),
        "the spanning plan must analyze clean:\n{}",
        analyzed.report.render()
    );
    let query = analyzed.query;
    let registry = query.registry();
    group.stream_metrics_into("sum", &registry);
    let server = ControlPlane::new(std::sync::Arc::clone(&registry))
        .with_topology(query.to_dot())
        .with_provenance(provenance.clone())
        .with_analysis(analyzed.report.to_json())
        .serve()
        .unwrap();

    // The endpoint is live while the query runs.
    let (status, body) = http_get(server.addr(), "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let origin_report = query.deploy().unwrap().wait().unwrap();
    let remote_reports = group.wait().unwrap();
    let merged =
        QueryReport::merge_distributed(std::iter::once(origin_report).chain(remote_reports));

    // --- /provenance/{sink_tuple_id}: exactly the oracle contribution set. ---
    let records = provenance.records();
    assert_eq!(records.len(), 6, "2 windows x 3 keys");
    for (sink_data, expected_sources) in oracle() {
        let record = records
            .iter()
            .find(|r| r.sink_data == sink_data)
            .unwrap_or_else(|| panic!("no sink tuple {sink_data:?}"));
        let got: BTreeSet<(u64, i64)> = record
            .sources
            .iter()
            .map(|s| (s.ts.as_secs(), s.data.1))
            .collect();
        assert_eq!(got, expected_sources, "lineage of {sink_data:?}");

        // The HTTP answer (dash-form id, as a curl user would write it).
        let path = format!(
            "/provenance/{}-{}",
            record.sink_id.origin, record.sink_id.seq
        );
        let (status, body) = http_get(server.addr(), &path);
        assert_eq!(status, 200, "{path} must resolve");
        assert_eq!(
            body,
            provenance
                .contribution_json(&record.sink_id.to_string())
                .unwrap()
        );
        assert!(body.contains(&format!(r#""id":"{}""#, record.sink_id)));
        assert!(body.contains(&format!(r#""source_count":{}"#, expected_sources.len())));
        for (ts_secs, value) in &expected_sources {
            let source = format!(
                r#"{{"id":"0#{value}","ts_ms":{},"data":"({}, {value})""#,
                ts_secs * 1000,
                value % 3
            );
            assert!(body.contains(&source), "{path}: missing {source} in {body}");
        }
    }
    let (status, _) = http_get(server.addr(), "/provenance/99-99");
    assert_eq!(status, 404, "unknown sink tuples are 404");

    // --- /metrics: the exposition agrees with the final distributed report. ---
    let (status, exposition) = http_get(server.addr(), "/metrics");
    assert_eq!(status, 200);

    // Per-operator tuple counters: the shard group spanning one local and two
    // remote instances reports as ONE operator series, equal to the folded report.
    let sum_report = merged.operator("sum").expect("folded shard report");
    assert_eq!(sum_report.instances, 3);
    assert_eq!(sum_report.stats.tuples_in, 12);
    assert_eq!(
        metric_value(
            &exposition,
            "genealog_operator_tuples_in_total",
            r#"operator="sum""#
        ),
        Some(sum_report.stats.tuples_in)
    );
    assert_eq!(
        metric_value(
            &exposition,
            "genealog_operator_tuples_out_total",
            r#"operator="sum""#
        ),
        Some(sum_report.stats.tuples_out)
    );
    for endpoint in ["sum.egress", "sum.recv", "sum.send", "sum.ingress"] {
        let report = merged.operator(endpoint).expect(endpoint);
        assert_eq!(
            metric_value(
                &exposition,
                "genealog_operator_tuples_in_total",
                &format!(r#"operator="{endpoint}""#)
            ),
            Some(report.stats.tuples_in),
            "{endpoint} counter must agree with the folded report"
        );
    }
    let source_report = merged.operator("readings").expect("source report");
    assert_eq!(
        metric_value(
            &exposition,
            "genealog_operator_tuples_out_total",
            r#"operator="readings""#
        ),
        Some(source_report.stats.tuples_out)
    );
    assert_eq!(
        metric_value(
            &exposition,
            "genealog_source_replay_offset",
            r#"operator="readings""#
        ),
        Some(12)
    );

    // Queue-depth gauges exist per edge and read 0 on the drained query.
    let depth_lines: Vec<&str> = exposition
        .lines()
        .filter(|l| l.starts_with("genealog_channel_queue_depth{edge="))
        .collect();
    assert!(!depth_lines.is_empty(), "queue-depth gauges are exported");
    assert!(
        depth_lines.iter().all(|l| l.ends_with(" 0")),
        "drained channels report depth 0: {depth_lines:?}"
    );

    // Sink-latency histogram: count and quantiles equal the report's snapshot.
    assert_eq!(sink.len() as u64, 6);
    let sink_report = merged.operator("sink").expect("sink report");
    let latency = sink_report.latency.as_ref().expect("latency histogram");
    assert_eq!(latency.count(), 6);
    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
        assert_eq!(
            metric_value(
                &exposition,
                "genealog_sink_latency_ns",
                &format!(r#"operator="sink",quantile="{label}""#)
            ),
            Some(latency.quantile(q)),
            "p{label} must agree with the report snapshot"
        );
    }
    assert_eq!(
        metric_value(
            &exposition,
            "genealog_sink_latency_ns_count",
            r#"operator="sink""#
        ),
        Some(latency.count())
    );

    // --- /topology.dot: the deployed graph, with the spliced endpoints. ---
    let (status, dot) = http_get(server.addr(), "/topology.dot");
    assert_eq!(status, 200);
    assert!(dot.starts_with("digraph"));
    for node in ["readings", "sum.exchange", "sum.merge", "sink"] {
        assert!(dot.contains(node), "topology must render {node}");
    }

    // --- /analyze: the deploy-time diagnostics of the deployed plan as JSON. ---
    let (status, analysis) = http_get(server.addr(), "/analyze");
    assert_eq!(status, 200);
    assert!(
        analysis.starts_with(r#"{"errors":0,"#),
        "the served report is the clean analyzer verdict: {analysis}"
    );
    assert!(analysis.contains(r#""diagnostics":["#));

    server.shutdown();
}
