//! Cross-crate correctness: for every evaluation query, the provenance captured by
//! GeneaLog (and, where applicable, reconstructed by the Ariadne-style baseline)
//! matches the ground truth computed by the brute-force oracle, and the
//! contribution-graph sizes match the figures quoted in the paper's §7
//! (4 / 8 / 192 / 24 source tuples per sink tuple for Q1–Q4).

use std::collections::BTreeSet;

use genealog::prelude::*;
use genealog_baseline::{AriadneBaseline, BaselineCollector};
use genealog_spe::Query;
use genealog_workloads::linear_road::{LinearRoadConfig, LinearRoadGenerator};
use genealog_workloads::oracle::{q1_oracle, q2_oracle, q3_oracle, q4_oracle, OracleAlert};
use genealog_workloads::queries::{build_q1, build_q2, build_q3, build_q4};
use genealog_workloads::smart_grid::{SmartGridConfig, SmartGridGenerator};
use genealog_workloads::types::{MeterReading, PositionReport};

fn lr_config() -> LinearRoadConfig {
    LinearRoadConfig {
        cars: 50,
        rounds: 30,
        ..LinearRoadConfig::default()
    }
}

fn sg_config() -> SmartGridConfig {
    SmartGridConfig {
        meters: 40,
        days: 3,
        ..SmartGridConfig::default()
    }
}

/// Canonical form of a provenance set: the sorted (ts, debug-rendered payload) pairs.
fn canonical_sources<S: std::fmt::Debug>(sources: &[(Timestamp, S)]) -> BTreeSet<(u64, String)> {
    sources
        .iter()
        .map(|(ts, s)| (ts.as_millis(), format!("{s:?}")))
        .collect()
}

fn canonical_gl<T: TupleData, S: TupleData>(
    assignment: &ProvenanceAssignment<T>,
) -> BTreeSet<(u64, String)> {
    assignment
        .source_records::<S>()
        .iter()
        .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
        .collect()
}

/// Runs a query under GeneaLog and checks every sink tuple's provenance against the
/// oracle's alerts (matched by canonical provenance set).
fn assert_gl_matches_oracle<T, S, A>(
    assignments: &[ProvenanceAssignment<T>],
    oracle: &[OracleAlert<A, S>],
    expected_sources_per_alert: usize,
) where
    T: TupleData,
    S: TupleData,
    A: std::fmt::Debug,
{
    assert_eq!(
        assignments.len(),
        oracle.len(),
        "GeneaLog and the oracle must agree on the number of alerts"
    );
    let oracle_sets: Vec<BTreeSet<(u64, String)>> = oracle
        .iter()
        .map(|alert| canonical_sources(&alert.sources))
        .collect();
    for assignment in assignments {
        let set = canonical_gl::<T, S>(assignment);
        assert_eq!(set.len(), expected_sources_per_alert);
        assert!(
            oracle_sets.contains(&set),
            "GeneaLog provenance {set:?} not predicted by the oracle"
        );
    }
}

#[test]
fn q1_genealog_provenance_matches_the_oracle() {
    let config = lr_config();
    let raw = LinearRoadGenerator::to_vec(config);
    let oracle = q1_oracle(&raw);
    assert!(!oracle.is_empty());

    let mut q = GlQuery::new(GeneaLog::new());
    let reports = q.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q1(&mut q, reports);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();

    assert_gl_matches_oracle::<_, PositionReport, _>(&provenance.assignments(), &oracle, 4);
}

#[test]
fn q2_genealog_provenance_matches_the_oracle() {
    let config = lr_config();
    let raw = LinearRoadGenerator::to_vec(config);
    let oracle = q2_oracle(&raw);
    assert!(!oracle.is_empty());

    let mut q = GlQuery::new(GeneaLog::new());
    let reports = q.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q2(&mut q, reports);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();

    // 2 stopped cars x 4 reports = 8 source tuples per accident (§7).
    assert_gl_matches_oracle::<_, PositionReport, _>(&provenance.assignments(), &oracle, 8);
}

#[test]
fn q3_genealog_provenance_matches_the_oracle() {
    let config = sg_config();
    let raw = SmartGridGenerator::to_vec(config);
    let oracle = q3_oracle(&raw);
    assert_eq!(oracle.len(), 1);
    assert_eq!(oracle[0].source_count(), 192);

    let mut q = GlQuery::new(GeneaLog::new());
    let readings = q.source("sg", SmartGridGenerator::new(config));
    let alerts = build_q3(&mut q, readings);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();

    assert_gl_matches_oracle::<_, MeterReading, _>(&provenance.assignments(), &oracle, 192);
}

#[test]
fn q4_genealog_provenance_matches_the_oracle() {
    let config = sg_config();
    let raw = SmartGridGenerator::to_vec(config);
    let oracle = q4_oracle(&raw);
    assert!(!oracle.is_empty());

    let mut q = GlQuery::new(GeneaLog::new());
    let readings = q.source("sg", SmartGridGenerator::new(config));
    let alerts = build_q4(&mut q, readings);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();

    // 24 hourly readings per anomaly alert (§7).
    assert_gl_matches_oracle::<_, MeterReading, _>(&provenance.assignments(), &oracle, 24);
}

#[test]
fn q1_baseline_provenance_matches_genealog() {
    let config = lr_config();

    // GeneaLog provenance.
    let mut q = GlQuery::new(GeneaLog::new());
    let reports = q.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q1(&mut q, reports);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();
    let gl_sets: BTreeSet<BTreeSet<(u64, String)>> = provenance
        .assignments()
        .iter()
        .map(canonical_gl::<_, PositionReport>)
        .collect();

    // Baseline provenance, reconstructed from annotations + retained store.
    let baseline = AriadneBaseline::new();
    let mut q = Query::new(baseline.clone());
    let reports = q.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q1(&mut q, reports);
    let sink = q.collecting_sink("alerts", alerts);
    q.deploy().unwrap().wait().unwrap();
    let collector = BaselineCollector::new(baseline);
    let bl_sets: BTreeSet<BTreeSet<(u64, String)>> = sink
        .tuples()
        .iter()
        .map(|alert| {
            collector
                .resolve::<_, PositionReport>(alert)
                .iter()
                .map(|s| (s.ts.as_millis(), format!("{:?}", s.data)))
                .collect()
        })
        .collect();

    assert_eq!(
        gl_sets, bl_sets,
        "GL and BL must capture identical provenance"
    );
    assert!(!gl_sets.is_empty());
}

#[test]
fn contribution_graph_sizes_match_the_paper() {
    // Q1: 4, Q2: 8, Q3: 192, Q4: 24 source tuples per sink tuple (§7).
    let lr = lr_config();
    let sg = sg_config();

    let raw = LinearRoadGenerator::to_vec(lr);
    assert!(q1_oracle(&raw).iter().all(|a| a.source_count() == 4));
    assert!(q2_oracle(&raw).iter().all(|a| a.source_count() == 8));
    let raw = SmartGridGenerator::to_vec(sg);
    assert!(q3_oracle(&raw).iter().all(|a| a.source_count() == 192));
    assert!(q4_oracle(&raw).iter().all(|a| a.source_count() == 24));
}
