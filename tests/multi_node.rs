//! Real multi-node deployment, end to end over loopback sockets: two `spe-node`
//! accept loops (the library behind the `spe-node` binary) each host part of one
//! GeneaLog shard group, the origin connects with [`connect_gl_node_group`], and
//! the deployment must be invisible against the local single-instance oracle:
//!
//! * **sink bytes** — identical tuples in the identical canonical order;
//! * **GeneaLog contribution sets** — identical per-sink-tuple source sets,
//!   stitched across two real process-boundary-shaped sockets by the MU;
//! * **metrics** — each node's registry ends up with the mirrored counters of
//!   the shards it hosted, and the origin registry folds the shipped deltas of
//!   every remote instance into the spanning query's exposition.

use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use genealog::prelude::*;
use genealog_distributed::deployment::logical_shard_provenance_sink;
use genealog_distributed::{
    connect_gl_node_group, run_node, NetworkConfig, NodeDeployment, NodeReading, ShardOpSpec,
};
use genealog_metrics::MetricsRegistry;
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::parallel::Parallelism;
use genealog_spe::state::{run_with_recovery, CheckpointConfig, CheckpointStore, RecoveryConfig};
use genealog_spe::PlannerConfig;
use genealog_store::{DurableBackend, StoreOptions};

type Reading = NodeReading;
/// `(ts_millis, debug-rendered payload)` — the byte-level identity of a sink tuple.
type SinkTuple = (u64, String);
/// A sink tuple plus the canonical set of source tuples contributing to it.
type Lineage = (SinkTuple, BTreeSet<SinkTuple>);

/// Must match `ShardOpSpec::SumAggregate { size_ms: 8_000, slide_ms: 4_000 }`.
fn window_spec() -> WindowSpec {
    WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap()
}

fn sum_key(r: &Reading) -> u32 {
    r.0
}

fn sum_window(w: &WindowView<'_, u32, Reading, GlMeta>) -> Reading {
    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
}

fn readings() -> Vec<(Timestamp, Reading)> {
    (0..36u64)
        .map(|i| (Timestamp::from_secs(i), ((i % 3) as u32, i as i64 - 12)))
        .collect()
}

fn canonical_lineage(
    records: &[genealog_distributed::ProvenanceRecord<Reading, Reading>],
) -> Vec<Lineage> {
    let mut lineage: Vec<Lineage> = records
        .iter()
        .map(|r| {
            let key = (r.sink_ts.as_millis(), format!("{:?}", r.sink_data));
            let sources: BTreeSet<SinkTuple> = r
                .sources
                .iter()
                .map(|s| (s.ts.as_millis(), format!("{:?}", s.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    lineage
}

/// The single-instance reference plan.
fn run_local() -> (Vec<SinkTuple>, Vec<Lineage>) {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("readings", VecSource::new(readings()));
    let sums = q.sharded_aggregate(
        "sum",
        src,
        window_spec(),
        sum_key,
        sum_window,
        |o: &Reading| o.0,
        Parallelism::instances(1),
    );
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", sums);
    let sink = q.collecting_sink("sink", out);
    q.deploy().unwrap().wait().unwrap();

    let tuples = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    let mut lineage: Vec<Lineage> = provenance
        .assignments()
        .iter()
        .map(|a| {
            let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
            let sources: BTreeSet<SinkTuple> = a
                .source_records::<Reading>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    (tuples, lineage)
}

/// One in-process node: a bound listener plus the accept loop on its own thread,
/// serving exactly one deployment before exiting — the `spe-node --once` shape.
struct Node {
    addr: SocketAddr,
    registry: Arc<MetricsRegistry>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn spawn_node() -> Node {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let registry = MetricsRegistry::new();
    let node_registry = Arc::clone(&registry);
    let thread = std::thread::spawn(move || {
        run_node(
            listener,
            &node_registry,
            NetworkConfig::unlimited(),
            Some(1),
        )
    });
    Node {
        addr,
        registry,
        thread,
    }
}

#[test]
fn two_nodes_hosting_one_shard_group_match_the_local_oracle() {
    let node_a = spawn_node();
    let node_b = spawn_node();

    let template = NodeDeployment {
        group: "sum".into(),
        shards: Vec::new(), // per-node lists below
        total_shards: 3,
        first_instance: 1, // origin is instance 0
        fusion: false,
        op: ShardOpSpec::SumAggregate {
            size_ms: 8_000,
            slide_ms: 4_000,
        },
        checkpoint_interval: None,
        restore_epoch: None,
    };
    let shards = connect_gl_node_group(
        &template,
        &[(node_a.addr, vec![0, 2]), (node_b.addr, vec![1])],
        NetworkConfig::unlimited(),
    )
    .unwrap();
    let mut group = shards.group;

    let plan = GlPlan::new(GeneaLog::for_instance(0));
    let sums = plan
        .source("readings", VecSource::new(readings()))
        .aggregate("sum", window_spec(), sum_key, sum_window, |o: &Reading| o.0)
        .place(shards.placements);
    let (out, provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
        sums,
        "prov",
        shards.provenance_links,
        Duration::from_hours(24),
    );
    let sink = out.collecting_sink("sink");

    // The origin folds every node-hosted shard's shipped registry deltas.
    let analyzed = plan.analyze().unwrap();
    assert!(
        !analyzed.report.has_errors(),
        "the spanning plan must analyze clean:\n{}",
        analyzed.report.render()
    );
    let query = analyzed.query;
    let registry = query.registry();
    group.stream_metrics_into("sum", &registry);

    query.deploy().unwrap().wait().unwrap();
    group.wait().unwrap();
    let (registry_a, registry_b) = (Arc::clone(&node_a.registry), Arc::clone(&node_b.registry));
    node_a.thread.join().unwrap().unwrap();
    node_b.thread.join().unwrap().unwrap();

    // Sink bytes and stitched lineage equal the local single-instance oracle.
    let (local_tuples, local_lineage) = run_local();
    let remote_tuples: Vec<SinkTuple> = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    assert!(!remote_tuples.is_empty());
    assert_eq!(local_tuples, remote_tuples);
    assert_eq!(local_lineage, canonical_lineage(&provenance.records()));

    // The origin exposition saw the remote shards: the folded per-operator
    // counter covers all 36 source tuples across both nodes.
    let exposition = registry.render_prometheus();
    let tuples_in = exposition
        .lines()
        .find_map(|l| l.strip_prefix("genealog_operator_tuples_in_total{operator=\"sum\"} "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("folded shard counter in the origin exposition");
    assert_eq!(tuples_in, 36);

    // Each node's own registry mirrors the shards it hosted (what its control
    // endpoint would serve), under per-shard remote instance keys.
    for (registry, hosted) in [(&registry_a, 24u64), (&registry_b, 12u64)] {
        let exposition = registry.render_prometheus();
        let node_tuples_in = exposition
            .lines()
            .find_map(|l| l.strip_prefix("genealog_operator_tuples_in_total{operator=\"sum\"} "))
            .and_then(|v| v.parse::<u64>().ok())
            .expect("mirrored shard counters in the node exposition");
        assert_eq!(
            node_tuples_in, hosted,
            "a node's registry must mirror exactly the shards it hosted"
        );
    }
}

/// The staged catalogue entry (`FilteredScaledSum`) with node-side fusion on:
/// filter → map collapse into one thread inside each hosted engine, and the
/// result still matches the unfused local plan with the same stages.
#[test]
fn staged_node_shards_with_fusion_match_the_local_staged_oracle() {
    let local = {
        let mut q = GlQuery::new(GeneaLog::new());
        let src = q.source("readings", VecSource::new(readings()));
        let kept = q.filter("keep", src, |r: &Reading| r.1 % 3 != 0);
        let scaled = q.map_one("scale", kept, |r: &Reading| (r.0, r.1 * 2));
        let sums = q.aggregate("sum", scaled, window_spec(), sum_key, sum_window);
        let (out, provenance) = attach_provenance_sink(&mut q, "prov", sums);
        let sink = q.collecting_sink("sink", out);
        q.deploy().unwrap().wait().unwrap();
        let tuples: Vec<SinkTuple> = sink
            .tuples()
            .iter()
            .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
            .collect();
        let mut lineage: Vec<Lineage> = provenance
            .assignments()
            .iter()
            .map(|a| {
                let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
                let sources: BTreeSet<SinkTuple> = a
                    .source_records::<Reading>()
                    .iter()
                    .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                    .collect();
                (key, sources)
            })
            .collect();
        lineage.sort();
        (tuples, lineage)
    };

    let node = spawn_node();
    let template = NodeDeployment {
        group: "sum".into(),
        shards: Vec::new(),
        total_shards: 2,
        first_instance: 1,
        fusion: true,
        op: ShardOpSpec::FilteredScaledSum {
            size_ms: 8_000,
            slide_ms: 4_000,
        },
        checkpoint_interval: None,
        restore_epoch: None,
    };
    let shards = connect_gl_node_group(
        &template,
        &[(node.addr, vec![0, 1])],
        NetworkConfig::unlimited(),
    )
    .unwrap();

    let plan = GlPlan::new(GeneaLog::for_instance(0));
    let sums = plan
        .source("readings", VecSource::new(readings()))
        .aggregate("sum", window_spec(), sum_key, sum_window, |o: &Reading| o.0)
        .place(shards.placements);
    let (out, provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
        sums,
        "prov",
        shards.provenance_links,
        Duration::from_hours(24),
    );
    let sink = out.collecting_sink("sink");
    plan.deploy().unwrap().wait().unwrap();
    shards.group.wait().unwrap();
    node.thread.join().unwrap().unwrap();

    let remote_tuples: Vec<SinkTuple> = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    assert!(!remote_tuples.is_empty());
    assert_eq!(local.0, remote_tuples);
    assert_eq!(local.1, canonical_lineage(&provenance.records()));
}

// ---------------------------------------------------------------------------
// Cross-process crash recovery: SIGKILL a real worker process mid-epoch,
// restart it against the same --state-dir, and the recovered deployment must
// be byte-identical to the fault-free oracle.
// ---------------------------------------------------------------------------

/// One real `spe-node` worker process, spawned from the compiled binary.
struct Worker {
    child: Child,
    addr: SocketAddr,
    ready: PathBuf,
}

fn spawn_worker(state_dir: &Path, tag: &str) -> Worker {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let ready = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "spe-node-ready-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_file(&ready);
    let child = Command::new(env!("CARGO_BIN_EXE_spe-node"))
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--state-dir")
        .arg(state_dir)
        .arg("--ready-file")
        .arg(&ready)
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn the spe-node worker binary");
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    let addr = loop {
        if let Some(addr) = std::fs::read_to_string(&ready)
            .ok()
            .and_then(|text| text.lines().next().and_then(|l| l.parse().ok()))
        {
            break addr;
        }
        assert!(
            Instant::now() < deadline,
            "spe-node never wrote its ready file"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    Worker { child, addr, ready }
}

/// A worker SIGKILLed between two barriers — no flush, no goodbye, a torn
/// record likely mid-segment — then restarted against the same `--state-dir`
/// must restore its shard state from its own disk, and the recovered run's
/// sink bytes and stitched contribution sets must equal the local fault-free
/// oracle. Worker state crosses the crash *only* through the durable store:
/// the replacement is a brand-new OS process.
#[test]
fn sigkilled_worker_restarted_from_its_state_dir_recovers_byte_identically() {
    const INTERVAL: u64 = 5;
    /// Tuples the origin lets through before stalling to wait for the kill:
    /// enough for two complete epochs at `INTERVAL` = 5.
    const GATE_AT: u64 = 12;
    const TOTAL_SHARDS: u32 = 2;

    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR"));
    let state_a = tmp.join(format!("node-a-{}", std::process::id()));
    let state_b = tmp.join(format!("node-b-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_a);
    let _ = std::fs::remove_dir_all(&state_b);

    let worker_a = spawn_worker(&state_a, "a");
    let worker_b = Arc::new(Mutex::new(spawn_worker(&state_b, "b")));

    let store = CheckpointStore::in_memory();
    // One provenance system for all attempts (shared id counters) and a fresh
    // instance namespace per attempt for the node-hosted shards, so replayed
    // tuple ids never collide with checkpointed ones.
    let origin_system = GeneaLog::for_instance(0);
    let released = Arc::new(AtomicBool::new(false));
    let killed = Arc::new(AtomicBool::new(false));

    // The killer: once the origin observes a complete epoch (which implies
    // every hosted shard durably committed it — stores fsync before the
    // barrier is forwarded), SIGKILL worker B mid-run and unblock the stream.
    {
        let store = Arc::clone(&store);
        let released = Arc::clone(&released);
        let killed = Arc::clone(&killed);
        let worker_b = Arc::clone(&worker_b);
        std::thread::spawn(move || {
            let deadline = Instant::now() + std::time::Duration::from_secs(60);
            while store.latest_complete_epoch().is_none_or(|e| e < 1) && Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            worker_b
                .lock()
                .unwrap()
                .child
                .kill()
                .expect("SIGKILL worker B");
            killed.store(true, Ordering::SeqCst);
            released.store(true, Ordering::SeqCst);
        });
    }

    let worker_a_addr = worker_a.addr;
    let restore_epochs: Arc<Mutex<Vec<Option<u64>>>> = Arc::new(Mutex::new(Vec::new()));
    let restore_epochs_seen = Arc::clone(&restore_epochs);
    let (_, (sink, provenance, group)) = run_with_recovery(
        &store,
        RecoveryConfig {
            max_attempts: 4,
            backoff: std::time::Duration::from_millis(50),
        },
        |attempt| {
            if attempt > 0 {
                // Restart the SIGKILLed worker: a brand-new process, same disk.
                let mut guard = worker_b.lock().unwrap();
                let _ = guard.child.wait();
                *guard = spawn_worker(&state_b, "b-restarted");
            }
            let worker_b_addr = worker_b.lock().unwrap().addr;
            let template = NodeDeployment {
                group: "sum".into(),
                shards: Vec::new(),
                total_shards: TOTAL_SHARDS,
                first_instance: 1 + attempt as u32 * TOTAL_SHARDS,
                fusion: false,
                op: ShardOpSpec::SumAggregate {
                    size_ms: 8_000,
                    slide_ms: 4_000,
                },
                checkpoint_interval: Some(INTERVAL),
                restore_epoch: if attempt == 0 {
                    None
                } else {
                    store.restore_epoch()
                },
            };
            restore_epochs_seen
                .lock()
                .unwrap()
                .push(template.restore_epoch);
            let shards = connect_gl_node_group(
                &template,
                &[(worker_a_addr, vec![0]), (worker_b_addr, vec![1])],
                NetworkConfig::unlimited(),
            )?;
            let plan = GlPlan::with_config(
                origin_system.clone(),
                PlannerConfig::default()
                    .with_checkpoints(CheckpointConfig::new(INTERVAL, Arc::clone(&store))),
            );
            let released = Arc::clone(&released);
            let seen = Arc::new(AtomicU64::new(0));
            let sums = plan
                .source("readings", VecSource::new(readings()))
                .filter("gate", move |_r: &Reading| {
                    if seen.fetch_add(1, Ordering::SeqCst) + 1 > GATE_AT {
                        while !released.load(Ordering::SeqCst) {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                    }
                    true
                })
                .aggregate("sum", window_spec(), sum_key, sum_window, |o: &Reading| o.0)
                .place(shards.placements);
            let (out, provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
                sums,
                "prov",
                shards.provenance_links,
                Duration::from_hours(24),
            );
            let sink = out.collecting_sink("sink");
            Ok((plan.deploy()?, (sink, provenance, shards.group)))
        },
    )
    .expect("cross-process recovery must succeed within the attempt budget");
    group.wait().expect("winning attempt's node-hosted shards");

    assert!(
        killed.load(Ordering::SeqCst),
        "the killer must have SIGKILLed worker B mid-run"
    );
    assert!(
        store.recoveries() >= 1,
        "the SIGKILL must push the run through recovery"
    );
    assert!(
        state_b.join("sum").is_dir(),
        "the restarted worker must have reopened its on-disk store"
    );
    let restores = restore_epochs.lock().unwrap().clone();
    assert!(
        restores.last().is_some_and(|e| e.is_some()),
        "the winning re-deployment must pin an origin-complete restore epoch \
         (the restarted worker restores it from its own disk), got {restores:?}"
    );

    // Byte-identical to the fault-free local oracle: same sink tuples in the
    // same canonical order, same per-sink-tuple source sets stitched across
    // the real process boundary.
    let (local_tuples, local_lineage) = run_local();
    let remote_tuples: Vec<SinkTuple> = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    assert!(!remote_tuples.is_empty());
    assert_eq!(local_tuples, remote_tuples);
    assert_eq!(local_lineage, canonical_lineage(&provenance.records()));

    // SIGTERM (clean shutdown) on the surviving worker: manifests flush, the
    // ready file is removed, and the process exits 0.
    let pid = worker_a.child.id();
    let status = Command::new("kill")
        .arg("-TERM")
        .arg(pid.to_string())
        .status()
        .expect("send SIGTERM to worker A");
    assert!(status.success(), "kill -TERM must reach worker A");
    let mut worker_a = worker_a;
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    let exit = loop {
        if let Some(exit) = worker_a.child.try_wait().expect("poll worker A") {
            break exit;
        }
        assert!(
            Instant::now() < deadline,
            "worker A did not exit on SIGTERM"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert!(exit.success(), "SIGTERM must be a clean (code 0) shutdown");
    assert!(
        !worker_a.ready.exists(),
        "a clean shutdown must remove the ready file"
    );
    // The flushed manifest marks the shutdown clean — visible to the next open.
    let reopened = DurableBackend::open_with(state_a.join("sum"), StoreOptions::incremental())
        .expect("reopen worker A's store");
    assert!(
        reopened.previous_clean_shutdown(),
        "SIGTERM must flush the store manifest with the clean-shutdown marker"
    );
    assert!(
        reopened.latest_complete_epoch().is_some(),
        "worker A's disk must hold the complete epochs it committed"
    );

    // Worker B is cleaned up hard; its disk already proved its point.
    let mut guard = worker_b.lock().unwrap();
    let _ = guard.child.kill();
    let _ = guard.child.wait();
}
