//! Real multi-node deployment, end to end over loopback sockets: two `spe-node`
//! accept loops (the library behind the `spe-node` binary) each host part of one
//! GeneaLog shard group, the origin connects with [`connect_gl_node_group`], and
//! the deployment must be invisible against the local single-instance oracle:
//!
//! * **sink bytes** — identical tuples in the identical canonical order;
//! * **GeneaLog contribution sets** — identical per-sink-tuple source sets,
//!   stitched across two real process-boundary-shaped sockets by the MU;
//! * **metrics** — each node's registry ends up with the mirrored counters of
//!   the shards it hosted, and the origin registry folds the shipped deltas of
//!   every remote instance into the spanning query's exposition.

use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

use genealog::prelude::*;
use genealog_distributed::deployment::logical_shard_provenance_sink;
use genealog_distributed::{
    connect_gl_node_group, run_node, NetworkConfig, NodeDeployment, NodeReading, ShardOpSpec,
};
use genealog_metrics::MetricsRegistry;
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::parallel::Parallelism;

type Reading = NodeReading;
/// `(ts_millis, debug-rendered payload)` — the byte-level identity of a sink tuple.
type SinkTuple = (u64, String);
/// A sink tuple plus the canonical set of source tuples contributing to it.
type Lineage = (SinkTuple, BTreeSet<SinkTuple>);

/// Must match `ShardOpSpec::SumAggregate { size_ms: 8_000, slide_ms: 4_000 }`.
fn window_spec() -> WindowSpec {
    WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap()
}

fn sum_key(r: &Reading) -> u32 {
    r.0
}

fn sum_window(w: &WindowView<'_, u32, Reading, GlMeta>) -> Reading {
    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
}

fn readings() -> Vec<(Timestamp, Reading)> {
    (0..36u64)
        .map(|i| (Timestamp::from_secs(i), ((i % 3) as u32, i as i64 - 12)))
        .collect()
}

fn canonical_lineage(
    records: &[genealog_distributed::ProvenanceRecord<Reading, Reading>],
) -> Vec<Lineage> {
    let mut lineage: Vec<Lineage> = records
        .iter()
        .map(|r| {
            let key = (r.sink_ts.as_millis(), format!("{:?}", r.sink_data));
            let sources: BTreeSet<SinkTuple> = r
                .sources
                .iter()
                .map(|s| (s.ts.as_millis(), format!("{:?}", s.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    lineage
}

/// The single-instance reference plan.
fn run_local() -> (Vec<SinkTuple>, Vec<Lineage>) {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("readings", VecSource::new(readings()));
    let sums = q.sharded_aggregate(
        "sum",
        src,
        window_spec(),
        sum_key,
        sum_window,
        |o: &Reading| o.0,
        Parallelism::instances(1),
    );
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", sums);
    let sink = q.collecting_sink("sink", out);
    q.deploy().unwrap().wait().unwrap();

    let tuples = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    let mut lineage: Vec<Lineage> = provenance
        .assignments()
        .iter()
        .map(|a| {
            let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
            let sources: BTreeSet<SinkTuple> = a
                .source_records::<Reading>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    (tuples, lineage)
}

/// One in-process node: a bound listener plus the accept loop on its own thread,
/// serving exactly one deployment before exiting — the `spe-node --once` shape.
struct Node {
    addr: SocketAddr,
    registry: Arc<MetricsRegistry>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

fn spawn_node() -> Node {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let registry = MetricsRegistry::new();
    let node_registry = Arc::clone(&registry);
    let thread = std::thread::spawn(move || {
        run_node(
            listener,
            &node_registry,
            NetworkConfig::unlimited(),
            Some(1),
        )
    });
    Node {
        addr,
        registry,
        thread,
    }
}

#[test]
fn two_nodes_hosting_one_shard_group_match_the_local_oracle() {
    let node_a = spawn_node();
    let node_b = spawn_node();

    let template = NodeDeployment {
        group: "sum".into(),
        shards: Vec::new(), // per-node lists below
        total_shards: 3,
        first_instance: 1, // origin is instance 0
        fusion: false,
        op: ShardOpSpec::SumAggregate {
            size_ms: 8_000,
            slide_ms: 4_000,
        },
    };
    let shards = connect_gl_node_group(
        &template,
        &[(node_a.addr, vec![0, 2]), (node_b.addr, vec![1])],
        NetworkConfig::unlimited(),
    )
    .unwrap();
    let mut group = shards.group;

    let plan = GlPlan::new(GeneaLog::for_instance(0));
    let sums = plan
        .source("readings", VecSource::new(readings()))
        .aggregate("sum", window_spec(), sum_key, sum_window, |o: &Reading| o.0)
        .place(shards.placements);
    let (out, provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
        sums,
        "prov",
        shards.provenance_links,
        Duration::from_hours(24),
    );
    let sink = out.collecting_sink("sink");

    // The origin folds every node-hosted shard's shipped registry deltas.
    let analyzed = plan.analyze().unwrap();
    assert!(
        !analyzed.report.has_errors(),
        "the spanning plan must analyze clean:\n{}",
        analyzed.report.render()
    );
    let query = analyzed.query;
    let registry = query.registry();
    group.stream_metrics_into("sum", &registry);

    query.deploy().unwrap().wait().unwrap();
    group.wait().unwrap();
    let (registry_a, registry_b) = (Arc::clone(&node_a.registry), Arc::clone(&node_b.registry));
    node_a.thread.join().unwrap().unwrap();
    node_b.thread.join().unwrap().unwrap();

    // Sink bytes and stitched lineage equal the local single-instance oracle.
    let (local_tuples, local_lineage) = run_local();
    let remote_tuples: Vec<SinkTuple> = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    assert!(!remote_tuples.is_empty());
    assert_eq!(local_tuples, remote_tuples);
    assert_eq!(local_lineage, canonical_lineage(&provenance.records()));

    // The origin exposition saw the remote shards: the folded per-operator
    // counter covers all 36 source tuples across both nodes.
    let exposition = registry.render_prometheus();
    let tuples_in = exposition
        .lines()
        .find_map(|l| l.strip_prefix("genealog_operator_tuples_in_total{operator=\"sum\"} "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("folded shard counter in the origin exposition");
    assert_eq!(tuples_in, 36);

    // Each node's own registry mirrors the shards it hosted (what its control
    // endpoint would serve), under per-shard remote instance keys.
    for (registry, hosted) in [(&registry_a, 24u64), (&registry_b, 12u64)] {
        let exposition = registry.render_prometheus();
        let node_tuples_in = exposition
            .lines()
            .find_map(|l| l.strip_prefix("genealog_operator_tuples_in_total{operator=\"sum\"} "))
            .and_then(|v| v.parse::<u64>().ok())
            .expect("mirrored shard counters in the node exposition");
        assert_eq!(
            node_tuples_in, hosted,
            "a node's registry must mirror exactly the shards it hosted"
        );
    }
}

/// The staged catalogue entry (`FilteredScaledSum`) with node-side fusion on:
/// filter → map collapse into one thread inside each hosted engine, and the
/// result still matches the unfused local plan with the same stages.
#[test]
fn staged_node_shards_with_fusion_match_the_local_staged_oracle() {
    let local = {
        let mut q = GlQuery::new(GeneaLog::new());
        let src = q.source("readings", VecSource::new(readings()));
        let kept = q.filter("keep", src, |r: &Reading| r.1 % 3 != 0);
        let scaled = q.map_one("scale", kept, |r: &Reading| (r.0, r.1 * 2));
        let sums = q.aggregate("sum", scaled, window_spec(), sum_key, sum_window);
        let (out, provenance) = attach_provenance_sink(&mut q, "prov", sums);
        let sink = q.collecting_sink("sink", out);
        q.deploy().unwrap().wait().unwrap();
        let tuples: Vec<SinkTuple> = sink
            .tuples()
            .iter()
            .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
            .collect();
        let mut lineage: Vec<Lineage> = provenance
            .assignments()
            .iter()
            .map(|a| {
                let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
                let sources: BTreeSet<SinkTuple> = a
                    .source_records::<Reading>()
                    .iter()
                    .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                    .collect();
                (key, sources)
            })
            .collect();
        lineage.sort();
        (tuples, lineage)
    };

    let node = spawn_node();
    let template = NodeDeployment {
        group: "sum".into(),
        shards: Vec::new(),
        total_shards: 2,
        first_instance: 1,
        fusion: true,
        op: ShardOpSpec::FilteredScaledSum {
            size_ms: 8_000,
            slide_ms: 4_000,
        },
    };
    let shards = connect_gl_node_group(
        &template,
        &[(node.addr, vec![0, 1])],
        NetworkConfig::unlimited(),
    )
    .unwrap();

    let plan = GlPlan::new(GeneaLog::for_instance(0));
    let sums = plan
        .source("readings", VecSource::new(readings()))
        .aggregate("sum", window_spec(), sum_key, sum_window, |o: &Reading| o.0)
        .place(shards.placements);
    let (out, provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
        sums,
        "prov",
        shards.provenance_links,
        Duration::from_hours(24),
    );
    let sink = out.collecting_sink("sink");
    plan.deploy().unwrap().wait().unwrap();
    shards.group.wait().unwrap();
    node.thread.join().unwrap().unwrap();

    let remote_tuples: Vec<SinkTuple> = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    assert!(!remote_tuples.is_empty());
    assert_eq!(local.0, remote_tuples);
    assert_eq!(local.1, canonical_lineage(&provenance.records()));
}
