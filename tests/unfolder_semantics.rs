//! Semantics of the provenance unfolders, checked against the paper's definitions:
//!
//! * Definition 5.2 / Theorem 5.3 — the single-stream unfolder's pass-through output is
//!   an exact copy of its input stream, and its unfolded stream pairs every sink tuple
//!   with *all* of its originating tuples.
//! * Definition 6.3 — intra-process unfolded streams are *completely* unfolded: every
//!   originating tuple is of kind SOURCE.
//! * Definition 6.4 — the multi-stream unfolder forwards SOURCE-originating tuples
//!   unchanged and replaces REMOTE-originating tuples by the matching upstream tuples.

use std::collections::BTreeSet;

use genealog::prelude::*;
use genealog_workloads::linear_road::{LinearRoadConfig, LinearRoadGenerator};
use genealog_workloads::queries::{build_q1, build_q2};
use genealog_workloads::types::PositionReport;

fn lr_config() -> LinearRoadConfig {
    LinearRoadConfig {
        cars: 40,
        rounds: 25,
        ..LinearRoadConfig::default()
    }
}

#[test]
fn unfolder_passthrough_is_an_exact_copy_of_the_delivering_stream() {
    let config = lr_config();

    // Reference run without the unfolder.
    let mut reference = GlQuery::new(GeneaLog::new());
    let reports = reference.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q1(&mut reference, reports);
    let ref_sink = reference.collecting_sink("alerts", alerts);
    reference.deploy().unwrap().wait().unwrap();

    // Run with the unfolder attached; the pass-through copy feeds the data sink.
    let mut unfolded = GlQuery::new(GeneaLog::new());
    let reports = unfolded.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q1(&mut unfolded, reports);
    let (passthrough, provenance) = attach_provenance_sink(&mut unfolded, "prov", alerts);
    let sink = unfolded.collecting_sink("alerts", passthrough);
    unfolded.deploy().unwrap().wait().unwrap();

    let reference_alerts: Vec<_> = ref_sink.tuples().iter().map(|t| (t.ts, t.data)).collect();
    let unfolded_alerts: Vec<_> = sink.tuples().iter().map(|t| (t.ts, t.data)).collect();
    assert_eq!(
        reference_alerts, unfolded_alerts,
        "SO must be an exact copy of SI (Definition 5.2)"
    );
    // Theorem 5.3: one provenance assignment per sink tuple.
    assert_eq!(provenance.assignments().len(), unfolded_alerts.len());
}

#[test]
fn intra_process_unfolded_streams_are_completely_unfolded() {
    // Definition 6.3: within one process every originating tuple is a SOURCE tuple.
    let config = lr_config();
    let mut q = GlQuery::new(GeneaLog::new());
    let reports = q.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q2(&mut q, reports);
    let (passthrough, unfolded) = attach_unfolder(&mut q, "prov", alerts);
    q.discard(passthrough);
    let prov_sink = q.collecting_sink("prov", unfolded);
    q.deploy().unwrap().wait().unwrap();

    let tuples = prov_sink.tuples();
    assert!(!tuples.is_empty());
    assert!(
        tuples.iter().all(|t| t.data.origin_kind == OpKind::Source),
        "all originating tuples must be SOURCE in an intra-process deployment"
    );
    // The unfolded tuples carry the originating tuple's timestamp and id (Def. 6.2),
    // consistent with the originating tuple they reference.
    // Note: `origin_ts` may exceed `sink_ts` because aggregate outputs carry the
    // *start* of their window while contributing tuples can lie anywhere inside it.
    for t in &tuples {
        assert_eq!(t.data.origin_ts, t.data.origin.ts());
        assert_eq!(t.data.origin_id, t.data.origin.id());
    }
}

#[test]
fn unfolded_stream_counts_match_contribution_graph_sizes() {
    // The unfolded stream has exactly (number of sink tuples x graph size) elements for
    // Q1, whose graphs all have 4 source tuples.
    let config = lr_config();
    let mut q = GlQuery::new(GeneaLog::new());
    let reports = q.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q1(&mut q, reports);
    let (passthrough, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    let sink = q.collecting_sink("alerts", passthrough);
    q.deploy().unwrap().wait().unwrap();

    let alert_count = sink.len();
    assert!(alert_count > 0);
    assert_eq!(provenance.unfolded_count(), alert_count * 4);
    // And every assignment references 4 distinct source tuples of the alerted car.
    for assignment in provenance.assignments() {
        let sources = assignment.source_payloads::<PositionReport>();
        assert_eq!(sources.len(), 4);
        let cars: BTreeSet<u32> = sources.iter().map(|r| r.car_id).collect();
        assert_eq!(cars.len(), 1);
        let distinct_ids: BTreeSet<_> = assignment.sources.iter().map(|s| s.id()).collect();
        assert_eq!(distinct_ids.len(), 4, "originating tuples are distinct");
    }
}

#[test]
fn provenance_volume_is_a_small_fraction_of_the_source_volume() {
    // §7: "the total size of the provenance information is negligible compared to that
    // of the source data (0.003% to 0.5%)". The exact ratio depends on the alert rate;
    // with the default injection rates it stays well below a few percent.
    let config = LinearRoadConfig {
        cars: 100,
        rounds: 60,
        ..LinearRoadConfig::default()
    };
    let mut q = GlQuery::new(GeneaLog::new());
    let reports = q.source("lr", LinearRoadGenerator::new(config));
    let alerts = build_q1(&mut q, reports);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    q.discard(out);
    let report = q.deploy().unwrap().wait().unwrap();

    let source_bytes = report.source_tuples() * (std::mem::size_of::<PositionReport>() as u64 + 8);
    let provenance_bytes = provenance.estimated_bytes() as u64;
    assert!(provenance_bytes > 0);
    assert!(
        (provenance_bytes as f64) < 0.05 * source_bytes as f64,
        "provenance ({provenance_bytes} B) should be a small fraction of the source data ({source_bytes} B)"
    );
}
