//! Engine-level behaviour exercised through the public API: back-pressure with tiny
//! channels, rate-limited sources, early stop, graph introspection, and provenance
//! flowing through every standard operator in one query.

use std::collections::BTreeSet;
use std::sync::Arc;

use genealog::prelude::*;
use genealog_spe::channel::{stream_channel, OutputSlot};
use genealog_spe::operator::source::{RateLimit, SourceConfig};
use genealog_spe::query::NodeKind;
use genealog_spe::QueryConfig;

#[test]
fn tiny_channels_do_not_change_results_or_provenance() {
    let readings: Vec<(u32, i64)> = (0..200).map(|i| (i % 4, (i % 7) as i64 * 20)).collect();
    let run = |capacity: usize| {
        let mut q = GlQuery::with_config(
            GeneaLog::new(),
            QueryConfig {
                channel_capacity: capacity,
                batch: BatchConfig::default(),
                ..QueryConfig::default()
            },
        );
        let src = q.source("sensors", VecSource::with_period(readings.clone(), 10_000));
        let hot = q.filter("hot", src, |(_, v): &(u32, i64)| *v >= 100);
        let counts = q.aggregate(
            "count",
            hot,
            WindowSpec::tumbling(Duration::from_secs(60)).unwrap(),
            |(s, _): &(u32, i64)| *s,
            |w| (*w.key, w.len()),
        );
        let alerts = q.filter("alerts", counts, |(_, n): &(u32, usize)| *n >= 1);
        let (out, prov) = attach_provenance_sink(&mut q, "prov", alerts);
        q.discard(out);
        q.deploy().unwrap().wait().unwrap();
        prov.assignments()
            .iter()
            .map(|a| {
                (
                    a.sink_ts.as_millis(),
                    format!("{:?}", a.sink_data),
                    a.source_records::<(u32, i64)>()
                        .iter()
                        .map(|r| (r.ts.as_millis(), r.data))
                        .collect::<BTreeSet<_>>(),
                )
            })
            .collect::<Vec<_>>()
    };
    let wide = run(2048);
    let narrow = run(1);
    assert_eq!(wide, narrow);
    assert!(!wide.is_empty());
}

#[test]
fn rate_limited_source_and_early_stop() {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source_with(
        "slow",
        VecSource::with_period((0..100_000i64).collect(), 1),
        SourceConfig {
            rate: RateLimit::TuplesPerSecond(20_000),
            watermark_every: 10,
        },
    );
    let sink = q.collecting_sink("sink", src);
    let handle = q.deploy().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    handle.stop();
    let report = handle.wait().unwrap();
    // The stop flag ends the run long before the full stream is injected, and
    // everything injected reaches the sink.
    assert!(report.source_tuples() < 100_000);
    assert_eq!(report.source_tuples(), sink.len() as u64);
}

#[test]
fn every_standard_operator_participates_in_one_provenanced_query() {
    // Source -> Multiplex -> (Filter | Map) -> Union -> Aggregate -> Join -> Sink,
    // with provenance captured at the end: the contribution graph crosses every
    // operator kind of §2.
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source(
        "numbers",
        VecSource::with_period((1..=40i64).collect(), 15_000),
    );
    let branches = q.multiplex("mux", src, 2);
    let mut branches = branches.into_iter();
    let evens = q.filter("evens", branches.next().unwrap(), |v| v % 2 == 0);
    let tripled = q.map_one("triple", branches.next().unwrap(), |v| v * 3);
    let merged = q.union("union", vec![evens, tripled]);
    let per_minute = q.aggregate(
        "per-minute",
        merged,
        WindowSpec::tumbling(Duration::from_mins(1)).unwrap(),
        |_: &i64| 0u8,
        |w| w.payloads().sum::<i64>(),
    );
    let mux2 = q.multiplex("mux2", per_minute, 2);
    let mut mux2 = mux2.into_iter();
    let left = mux2.next().unwrap();
    let right = mux2.next().unwrap();
    let joined = q.join(
        "self-join",
        left,
        right,
        Duration::from_mins(2),
        |a: &i64, b: &i64| a != b,
        |a: &i64, b: &i64| a + b,
    );
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", joined);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();

    let assignments = provenance.assignments();
    assert!(!assignments.is_empty());
    for assignment in &assignments {
        assert!(assignment.source_count() >= 2);
        // Every originating tuple is one of the injected numbers.
        for value in assignment.source_payloads::<i64>() {
            assert!((1..=40).contains(&value));
        }
    }
}

#[test]
fn query_graph_introspection_lists_nodes_and_edges() {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("numbers", VecSource::with_period(vec![1i64, 2, 3], 1_000));
    let doubled = q.map_one("double", src, |v| v * 2);
    let _ = q.collecting_sink("sink", doubled);
    assert_eq!(q.node_count(), 3);
    assert_eq!(q.edges().len(), 2);
    let kinds: Vec<NodeKind> = q.node_summaries().iter().map(|(_, k)| *k).collect();
    assert_eq!(kinds, vec![NodeKind::Source, NodeKind::Map, NodeKind::Sink]);
    let dot = q.to_dot();
    assert!(dot.contains("digraph"));
    assert!(dot.contains("double"));
    q.deploy().unwrap().wait().unwrap();
}

#[test]
fn latency_is_reported_per_sink_tuple() {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source(
        "numbers",
        VecSource::with_period((0..50i64).collect(), 1_000),
    );
    let stats = q.sink("sink", src, |_| {});
    q.deploy().unwrap().wait().unwrap();
    assert_eq!(stats.tuple_count(), 50);
    assert_eq!(stats.latencies_ns().len(), 50);
    assert!(stats.mean_latency_ms() >= 0.0);
    // Latencies are bounded by the run duration (well under a minute here).
    assert!(stats.latencies_ns().iter().all(|&ns| ns < 60_000_000_000));
}

// ---------------------------------------------------------------------------
// Batched-transport semantics
// ---------------------------------------------------------------------------

fn gl_tuple(ts: u64, v: i64) -> Arc<GTuple<i64, ()>> {
    Arc::new(GTuple::new(Timestamp::from_secs(ts), 0, v, ()))
}

#[test]
fn watermarks_are_never_reordered_past_data_within_a_batch() {
    // Data pushed before a watermark must arrive before it, even though the
    // watermark forces an immediate flush of the partial batch.
    let slot = OutputSlot::<i64, ()>::with_config(BatchConfig::with_size(1_000));
    let (tx, mut rx) = stream_channel(16);
    slot.connect(tx);
    let mut out = slot.open();
    for i in 0..5 {
        out.send_tuple(gl_tuple(i, i as i64)).unwrap();
    }
    out.send_watermark(Timestamp::from_secs(4)).unwrap();
    out.send_tuple(gl_tuple(5, 5)).unwrap();
    out.send_end().unwrap();

    let mut seen_watermark = false;
    let mut data_before_watermark = 0;
    let mut data_after_watermark = 0;
    loop {
        match rx.recv() {
            Element::Tuple(_) if seen_watermark => data_after_watermark += 1,
            Element::Tuple(_) => data_before_watermark += 1,
            Element::Watermark(ts) => {
                assert_eq!(ts, Timestamp::from_secs(4));
                seen_watermark = true;
            }
            Element::Barrier(_) => {}
            Element::End => break,
        }
    }
    assert_eq!(data_before_watermark, 5);
    assert_eq!(data_after_watermark, 1);
}

#[test]
fn end_of_stream_flushes_partial_batches() {
    // A batch size far larger than the stream length must not strand elements:
    // Element::End flushes whatever is buffered ahead of it.
    let mut q = GlQuery::with_config(
        GeneaLog::new(),
        QueryConfig::default().with_batch_size(10_000),
    );
    let src = q.source(
        "numbers",
        VecSource::with_period((0..7i64).collect(), 1_000),
    );
    let doubled = q.map_one("double", src, |v| v * 2);
    let out = q.collecting_sink("sink", doubled);
    q.deploy().unwrap().wait().unwrap();
    let values: Vec<i64> = out.tuples().iter().map(|t| t.data).collect();
    assert_eq!(values, vec![0, 2, 4, 6, 8, 10, 12]);
}

#[test]
fn batch_size_one_matches_default_batching() {
    // With BatchConfig::unbatched() every element travels alone, reproducing the
    // original per-element transport; the observable behaviour must be identical.
    let run = |config: QueryConfig| {
        let mut q = GlQuery::with_config(GeneaLog::new(), config);
        let src = q.source(
            "numbers",
            VecSource::with_period((0..100i64).collect(), 5_000),
        );
        let odd = q.filter("odd", src, |v| v % 2 == 1);
        let windowed = q.aggregate(
            "sum",
            odd,
            WindowSpec::tumbling(Duration::from_secs(60)).unwrap(),
            |_: &i64| 0u8,
            |w| w.payloads().sum::<i64>(),
        );
        let (out, prov) = attach_provenance_sink(&mut q, "prov", windowed);
        q.discard(out);
        q.deploy().unwrap().wait().unwrap();
        prov.assignments()
            .iter()
            .map(|a| {
                (
                    a.sink_ts.as_millis(),
                    a.sink_data,
                    a.source_payloads::<i64>()
                        .into_iter()
                        .collect::<BTreeSet<_>>(),
                )
            })
            .collect::<Vec<_>>()
    };
    let unbatched = run(QueryConfig::default().unbatched());
    let batched = run(QueryConfig::default().with_batch_size(64));
    assert_eq!(unbatched, batched);
    assert!(!unbatched.is_empty());
}

#[test]
fn backpressure_blocks_a_fast_source_under_batching() {
    // A capacity-1 channel holds a single batch: an unthrottled source must block
    // behind a deliberately slow sink rather than buffer or drop elements.
    let total: i64 = 300;
    let mut q = GlQuery::with_config(
        GeneaLog::new(),
        QueryConfig {
            channel_capacity: 1,
            batch: BatchConfig::with_size(8),
            ..QueryConfig::default()
        },
    );
    let src = q.source("fast", VecSource::with_period((0..total).collect(), 1_000));
    let stats = q.sink("slow-sink", src, |_| {
        std::thread::sleep(std::time::Duration::from_micros(50));
    });
    let report = q.deploy().unwrap().wait().unwrap();
    assert_eq!(report.source_tuples(), total as u64);
    assert_eq!(
        stats.tuple_count(),
        total as u64,
        "no element may be dropped"
    );
}

#[test]
fn per_operator_batch_config_is_applied_to_subsequent_operators() {
    let mut q = GlQuery::new(GeneaLog::new());
    assert_eq!(q.batch_config(), BatchConfig::default());
    q.set_batch_config(BatchConfig::with_size(128));
    let src = q.source(
        "numbers",
        VecSource::with_period((0..50i64).collect(), 1_000),
    );
    q.set_batch_config(BatchConfig::unbatched());
    let mapped = q.map_one("copy", src, |v| *v);
    assert_eq!(q.batch_config(), BatchConfig::unbatched());
    let out = q.collecting_sink("sink", mapped);
    q.deploy().unwrap().wait().unwrap();
    assert_eq!(out.len(), 50);
}
