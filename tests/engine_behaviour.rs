//! Engine-level behaviour exercised through the public API: back-pressure with tiny
//! channels, rate-limited sources, early stop, graph introspection, and provenance
//! flowing through every standard operator in one query.

use std::collections::BTreeSet;

use genealog::prelude::*;
use genealog_spe::operator::source::{RateLimit, SourceConfig};
use genealog_spe::query::NodeKind;
use genealog_spe::QueryConfig;

#[test]
fn tiny_channels_do_not_change_results_or_provenance() {
    let readings: Vec<(u32, i64)> = (0..200).map(|i| (i % 4, (i % 7) as i64 * 20)).collect();
    let run = |capacity: usize| {
        let mut q = GlQuery::with_config(
            GeneaLog::new(),
            QueryConfig {
                channel_capacity: capacity,
            },
        );
        let src = q.source("sensors", VecSource::with_period(readings.clone(), 10_000));
        let hot = q.filter("hot", src, |(_, v): &(u32, i64)| *v >= 100);
        let counts = q.aggregate(
            "count",
            hot,
            WindowSpec::tumbling(Duration::from_secs(60)).unwrap(),
            |(s, _): &(u32, i64)| *s,
            |w| (*w.key, w.len()),
        );
        let alerts = q.filter("alerts", counts, |(_, n): &(u32, usize)| *n >= 1);
        let (out, prov) = attach_provenance_sink(&mut q, "prov", alerts);
        q.discard(out);
        q.deploy().unwrap().wait().unwrap();
        prov.assignments()
            .iter()
            .map(|a| {
                (
                    a.sink_ts.as_millis(),
                    format!("{:?}", a.sink_data),
                    a.source_records::<(u32, i64)>()
                        .iter()
                        .map(|r| (r.ts.as_millis(), r.data))
                        .collect::<BTreeSet<_>>(),
                )
            })
            .collect::<Vec<_>>()
    };
    let wide = run(2048);
    let narrow = run(1);
    assert_eq!(wide, narrow);
    assert!(!wide.is_empty());
}

#[test]
fn rate_limited_source_and_early_stop() {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source_with(
        "slow",
        VecSource::with_period((0..100_000i64).collect(), 1),
        SourceConfig {
            rate: RateLimit::TuplesPerSecond(20_000),
            watermark_every: 10,
        },
    );
    let sink = q.collecting_sink("sink", src);
    let handle = q.deploy().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    handle.stop();
    let report = handle.wait().unwrap();
    // The stop flag ends the run long before the full stream is injected, and
    // everything injected reaches the sink.
    assert!(report.source_tuples() < 100_000);
    assert_eq!(report.source_tuples(), sink.len() as u64);
}

#[test]
fn every_standard_operator_participates_in_one_provenanced_query() {
    // Source -> Multiplex -> (Filter | Map) -> Union -> Aggregate -> Join -> Sink,
    // with provenance captured at the end: the contribution graph crosses every
    // operator kind of §2.
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source(
        "numbers",
        VecSource::with_period((1..=40i64).collect(), 15_000),
    );
    let branches = q.multiplex("mux", src, 2);
    let mut branches = branches.into_iter();
    let evens = q.filter("evens", branches.next().unwrap(), |v| v % 2 == 0);
    let tripled = q.map_one("triple", branches.next().unwrap(), |v| v * 3);
    let merged = q.union("union", vec![evens, tripled]);
    let per_minute = q.aggregate(
        "per-minute",
        merged,
        WindowSpec::tumbling(Duration::from_mins(1)).unwrap(),
        |_: &i64| (),
        |w| w.payloads().sum::<i64>(),
    );
    let mux2 = q.multiplex("mux2", per_minute, 2);
    let mut mux2 = mux2.into_iter();
    let left = mux2.next().unwrap();
    let right = mux2.next().unwrap();
    let joined = q.join(
        "self-join",
        left,
        right,
        Duration::from_mins(2),
        |a: &i64, b: &i64| a != b,
        |a: &i64, b: &i64| a + b,
    );
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", joined);
    q.discard(out);
    q.deploy().unwrap().wait().unwrap();

    let assignments = provenance.assignments();
    assert!(!assignments.is_empty());
    for assignment in &assignments {
        assert!(assignment.source_count() >= 2);
        // Every originating tuple is one of the injected numbers.
        for value in assignment.source_payloads::<i64>() {
            assert!((1..=40).contains(&value));
        }
    }
}

#[test]
fn query_graph_introspection_lists_nodes_and_edges() {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("numbers", VecSource::with_period(vec![1i64, 2, 3], 1_000));
    let doubled = q.map_one("double", src, |v| v * 2);
    let _ = q.collecting_sink("sink", doubled);
    assert_eq!(q.node_count(), 3);
    assert_eq!(q.edges().len(), 2);
    let kinds: Vec<NodeKind> = q.node_summaries().iter().map(|(_, k)| *k).collect();
    assert_eq!(kinds, vec![NodeKind::Source, NodeKind::Map, NodeKind::Sink]);
    let dot = q.to_dot();
    assert!(dot.contains("digraph"));
    assert!(dot.contains("double"));
    q.deploy().unwrap().wait().unwrap();
}

#[test]
fn latency_is_reported_per_sink_tuple() {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("numbers", VecSource::with_period((0..50i64).collect(), 1_000));
    let stats = q.sink("sink", src, |_| {});
    q.deploy().unwrap().wait().unwrap();
    assert_eq!(stats.tuple_count(), 50);
    assert_eq!(stats.latencies_ns().len(), 50);
    assert!(stats.mean_latency_ms() >= 0.0);
    // Latencies are bounded by the run duration (well under a minute here).
    assert!(stats.latencies_ns().iter().all(|&ns| ns < 60_000_000_000));
}
