//! Public-API surface pin for the deprecated legacy entry points.
//!
//! `sharded_aggregate_placed`, `sharded_join_placed`, `filter_shards` and
//! `map_shards` are superseded by the logical-plan annotations
//! (`.with(Parallelism::shards(n))`, `.place(..)`, `.keyed(..)`) but are kept for
//! one release. This suite guarantees they still **compile and run** — CI runs it
//! as the public-API surface check, so removing or breaking a deprecated signature
//! fails loudly instead of silently stranding downstream users.

#![allow(deprecated)]

use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::prelude::*;
use genealog_spe::query::{JoinShardPlacement, ShardPlacement};

type Reading = (u32, i64);

fn key(r: &Reading) -> u32 {
    r.0
}

#[test]
fn deprecated_sharded_aggregate_placed_still_works() {
    let mut q = Query::new(NoProvenance);
    let items: Vec<Reading> = (0..32).map(|i| (i % 4, i as i64)).collect();
    let src = q.source("src", VecSource::with_period(items, 1_000));
    let sums = q.sharded_aggregate_placed(
        "sum",
        src,
        WindowSpec::tumbling(Duration::from_secs(8)).unwrap(),
        key,
        |w: &WindowView<'_, u32, Reading, ()>| (*w.key, w.payloads().map(|p| p.1).sum::<i64>()),
        key,
        ShardPlacement::all_local(3),
    );
    let out = q.collecting_sink("sink", sums);
    let report = q.deploy().unwrap().wait().unwrap();
    assert!(!out.is_empty());
    assert_eq!(report.operator("sum").unwrap().instances, 3);
}

#[test]
fn deprecated_shard_stage_helpers_still_work() {
    let mut q = Query::new(NoProvenance);
    let items: Vec<Reading> = (0..32).map(|i| (i % 4, i as i64)).collect();
    let src = q.source("src", VecSource::with_period(items, 1_000));
    let shards = q.partition("part", src, 2, key);
    let kept = q.filter_shards("keep", shards, |r: &Reading| r.1 % 2 == 0);
    let scaled = q.map_shards("scale", kept, |r: &Reading| vec![(r.0, r.1 * 10)]);
    let merged = q.keyed_merge("merge", scaled, key);
    let out = q.collecting_sink("sink", merged);
    q.deploy().unwrap().wait().unwrap();
    assert_eq!(out.len(), 16);
    assert!(out.tuples().iter().all(|t| t.data.1 % 10 == 0));
}

#[test]
fn deprecated_sharded_join_placed_still_works() {
    let mut q = Query::new(NoProvenance);
    let left_items: Vec<Reading> = (0..16).map(|i| (i % 4, i as i64)).collect();
    let right_items: Vec<Reading> = (0..16).map(|i| (i % 4, 100 + i as i64)).collect();
    let left = q.source("left", VecSource::with_period(left_items, 1_000));
    let right = q.source("right", VecSource::with_period(right_items, 1_000));
    let joined = q.sharded_join_placed(
        "match",
        left,
        right,
        Duration::from_secs(2),
        key,
        key,
        |o: &(u32, i64, i64)| o.0,
        |l: &Reading, r: &Reading| l.0 == r.0,
        |l: &Reading, r: &Reading| (l.0, l.1, r.1),
        JoinShardPlacement::all_local(2),
    );
    let out = q.collecting_sink("sink", joined);
    q.deploy().unwrap().wait().unwrap();
    assert!(!out.is_empty());
    for t in out.tuples() {
        assert_eq!(t.data.1 % 4, (t.data.2 - 100) % 4);
    }
}
