//! Fault injection against the epoch-based checkpoint/recovery path (the tentpole
//! robustness guarantee): a run that loses a shard thread mid-stream, or whose
//! remote link is severed and re-established, must — after recovering from the
//! latest complete checkpoint — produce **byte-identical** results to a run that
//! never failed:
//!
//! * **sink bytes** — the same tuples in the same canonical `(timestamp, payload)`
//!   order, the recovered prefix coming out of the sink's checkpointed state and
//!   the suffix out of the replay;
//! * **GeneaLog contribution sets** — identical per-sink-tuple source sets, i.e.
//!   the checkpoint captured each operator's slice of the provenance graph well
//!   enough for the restored run to re-stitch lineage.
//!
//! Faults are armed through [`OneShot`] triggers and [`FaultPlan`]s so they hit
//! the first attempt only: the rebuilt attempt models the replacement thread /
//! re-established link and must run clean. Coverage spans shard counts {1, 2, 4},
//! local and remote placements, and operator fusion on/off.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use genealog::prelude::*;
use genealog_distributed::deployment::{
    logical_shard_provenance_sink, remote_shard_group_gl_with_faults,
    remote_shard_group_gl_with_faults_over,
};
use genealog_distributed::{FaultPlan, LinkFaults, NetworkConfig, OneShot, TcpLoopbackTransport};
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::query::{QueryConfig, ShardPlacement};
use genealog_spe::state::{run_with_recovery, CheckpointConfig, CheckpointStore, RecoveryConfig};
use genealog_spe::PlannerConfig;

type Key = u32;
type Reading = (Key, i64);
/// `(ts_millis, debug-rendered payload)` — the byte-level identity of a sink tuple.
type SinkTuple = (u64, String);
/// A sink tuple plus the canonical set of source tuples contributing to it.
type Lineage = (SinkTuple, BTreeSet<SinkTuple>);

/// Epoch length (tuples per barrier) used throughout: small enough that every
/// generated stream spans several epochs.
const INTERVAL: u64 = 5;

fn window_spec() -> WindowSpec {
    WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap()
}

fn sum_key(r: &Reading) -> Key {
    r.0
}

fn sum_window(w: &WindowView<'_, Key, Reading, GlMeta>) -> Reading {
    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
}

fn canonical_tuples(
    sink: &genealog_spe::operator::sink::CollectedStream<Reading, GlMeta>,
) -> Vec<SinkTuple> {
    sink.tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect()
}

/// Outcome of one (possibly recovered) run, in canonical form.
struct Run {
    tuples: Vec<SinkTuple>,
    lineage: Vec<Lineage>,
    recoveries: u64,
    fault_fired: bool,
}

// ---------------------------------------------------------------------------
// Scenario A: a local shard thread is killed mid-stream
// ---------------------------------------------------------------------------

/// Runs `source -> aggregate(place all_local(shards)) -> provenance sink -> sink`
/// under GeneaLog with checkpointing on. When `kill_at_close` is set, the window
/// close function panics — once, on the first attempt — after that many window
/// closes, killing whichever shard thread happens to evaluate it; the recovery
/// runner rebuilds the plan, restores every operator from the latest complete
/// epoch and replays the sources from their committed offsets.
fn run_local(
    reports: &[(Timestamp, Reading)],
    shards: usize,
    fusion: bool,
    kill_at_close: Option<u64>,
) -> Run {
    let store = CheckpointStore::in_memory();
    let trigger = OneShot::armed();
    let closes = Arc::new(AtomicU64::new(0));
    // One provenance system for ALL attempts: clones share the id counter, so the
    // rebuilt engine keeps allocating tuple ids *after* the failed attempt's ids.
    // The checkpointed provenance prefix is grouped by sink tuple id — restarting
    // the counter at zero would let a post-restore sink tuple collide with a
    // checkpointed one and merge their contribution sets.
    let system = GeneaLog::new();

    let (_, (sink, provenance)) =
        run_with_recovery(&store, RecoveryConfig::default(), |_attempt| {
            let plan = GlPlan::with_config(
                system.clone(),
                PlannerConfig::default()
                    .with_fusion(fusion)
                    .with_checkpoints(CheckpointConfig::new(INTERVAL, Arc::clone(&store))),
            );
            let trigger = Arc::clone(&trigger);
            let closes = Arc::clone(&closes);
            let sums = plan
                .source("readings", VecSource::new(reports.to_vec()))
                .aggregate(
                    "sum",
                    window_spec(),
                    sum_key,
                    move |w: &WindowView<'_, Key, Reading, GlMeta>| {
                        if let Some(k) = kill_at_close {
                            if closes.fetch_add(1, Ordering::SeqCst) + 1 >= k && trigger.fire() {
                                panic!("injected shard failure");
                            }
                        }
                        sum_window(w)
                    },
                    |o: &Reading| o.0,
                )
                .place(ShardPlacement::<GeneaLog, Reading, Reading>::all_local(
                    shards,
                ));
            let (out, provenance) = logical_provenance_sink(sums, "prov");
            let sink = out.collecting_sink("sink");
            Ok((plan.deploy()?, (sink, provenance)))
        })
        .expect("recovery must succeed within the attempt budget");

    let tuples = canonical_tuples(&sink);
    let mut lineage: Vec<Lineage> = provenance
        .assignments()
        .iter()
        .map(|a| {
            let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
            let sources: BTreeSet<SinkTuple> = a
                .source_records::<Reading>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    Run {
        tuples,
        lineage,
        recoveries: store.recoveries(),
        fault_fired: kill_at_close.is_some() && !trigger.is_armed(),
    }
}

// ---------------------------------------------------------------------------
// Scenario B: a remote shard's return link is severed mid-stream
// ---------------------------------------------------------------------------

/// Runs the distributed plan — every shard of the aggregate on its own remote SPE
/// instance — under GeneaLog with a deployment-global checkpoint store shared by
/// the origin and every remote engine. `fault` (applied to shard 0's return-link
/// data channel, first attempt only) severs the link mid-stream: the origin's
/// ingress observes a close without the end-of-stream marker, fences the store and
/// fails the query; the rebuilt attempt re-establishes fresh links, restores the
/// remote window state from the shared store and replays.
fn run_remote(
    reports: &[(Timestamp, Reading)],
    instances: usize,
    fusion: bool,
    fault: &FaultPlan,
    network: NetworkConfig,
) -> Run {
    let store = CheckpointStore::in_memory();
    // Long-lived provenance systems (origin = instance 0, remotes = 1..=instances):
    // every attempt gets clones sharing the id counters, so tuple ids stay unique
    // across restarts and the checkpointed provenance prefix cannot collide with
    // ids the rebuilt engines allocate after the restore point.
    let origin_system = GeneaLog::for_instance(0);
    let remote_systems: Vec<GeneaLog> = (0..instances)
        .map(|i| GeneaLog::for_instance(1 + i as u32))
        .collect();

    let (_, (sink, provenance, group)) =
        run_with_recovery(&store, RecoveryConfig::default(), |attempt| {
            let link_faults = fault.link_faults_for_attempt(attempt);
            let store_remote = Arc::clone(&store);
            let remote_systems = remote_systems.clone();
            let shards = remote_shard_group_gl_with_faults::<Reading, Reading, _, _, _>(
                "sum",
                instances,
                move |i| remote_systems[i].clone(),
                network,
                QueryConfig::default(),
                move |i| {
                    if i == 0 {
                        link_faults.clone()
                    } else {
                        LinkFaults::none()
                    }
                },
                move |rq, i, input| {
                    // Every remote engine joins the deployment-global checkpoint
                    // protocol; shard operators need per-instance participant
                    // names so their snapshots do not collide in the shared store.
                    rq.set_checkpoints(CheckpointConfig::new(INTERVAL, Arc::clone(&store_remote)));
                    rq.aggregate(
                        &format!("sum[{i}]"),
                        input,
                        window_spec(),
                        sum_key,
                        sum_window,
                    )
                },
            )?;

            let plan = GlPlan::with_config(
                origin_system.clone(),
                PlannerConfig::default()
                    .with_fusion(fusion)
                    .with_checkpoints(CheckpointConfig::new(INTERVAL, Arc::clone(&store))),
            );
            let sums = plan
                .source("readings", VecSource::new(reports.to_vec()))
                .aggregate("sum", window_spec(), sum_key, sum_window, |o: &Reading| o.0)
                .place(shards.placements);
            let (out, provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
                sums,
                "prov",
                shards.provenance_links,
                Duration::from_hours(24),
            );
            let sink = out.collecting_sink("sink");
            Ok((plan.deploy()?, (sink, provenance, shards.group)))
        })
        .expect("recovery must succeed within the attempt budget");
    // The winning attempt's remote engines drain clean.
    group.wait().expect("winning attempt's remote instances");

    let tuples = canonical_tuples(&sink);
    let mut lineage: Vec<Lineage> = provenance
        .records()
        .iter()
        .map(|r| {
            let key = (r.sink_ts.as_millis(), format!("{:?}", r.sink_data));
            let sources: BTreeSet<SinkTuple> = r
                .sources
                .iter()
                .map(|s| (s.ts.as_millis(), format!("{:?}", s.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    let recoveries = store.recoveries();
    Run {
        tuples,
        lineage,
        recoveries,
        fault_fired: recoveries > 0,
    }
}

// ---------------------------------------------------------------------------
// Scenario C: a real TCP socket dies mid-epoch
// ---------------------------------------------------------------------------

/// [`run_remote`] with real loopback sockets under the links. `kill` severs shard
/// 0's return *socket* — `shutdown(2)` mid-stream, no goodbye sentinel, exactly
/// what a crashed peer or yanked cable looks like to the origin — before its
/// `kill`-th data frame, on the first attempt only. The origin's ingress observes
/// the dropped connection as a link-severed close (the socket equivalent of
/// `FaultPlan::sever`), fences the store and fails the attempt; the rebuild dials
/// fresh sockets, restores from the latest complete epoch and replays.
fn run_remote_tcp(
    reports: &[(Timestamp, Reading)],
    instances: usize,
    fusion: bool,
    kill: Option<u64>,
) -> Run {
    let store = CheckpointStore::in_memory();
    let origin_system = GeneaLog::for_instance(0);
    let remote_systems: Vec<GeneaLog> = (0..instances)
        .map(|i| GeneaLog::for_instance(1 + i as u32))
        .collect();

    let (_, (sink, provenance, group)) =
        run_with_recovery(&store, RecoveryConfig::default(), |attempt| {
            // Sockets cannot outlive a failed attempt: each rebuild listens and
            // dials afresh, so the transport is constructed per attempt, armed
            // only on the first.
            let mut transport = TcpLoopbackTransport::new(NetworkConfig::unlimited());
            if let (Some(before_frame), 0) = (kill, attempt) {
                transport = transport.with_return_kill(0, before_frame);
            }
            let store_remote = Arc::clone(&store);
            let remote_systems = remote_systems.clone();
            let shards = remote_shard_group_gl_with_faults_over::<Reading, Reading, _, _, _>(
                "sum",
                instances,
                move |i| remote_systems[i].clone(),
                &transport,
                QueryConfig::default(),
                |_| LinkFaults::none(),
                move |rq, i, input| {
                    rq.set_checkpoints(CheckpointConfig::new(INTERVAL, Arc::clone(&store_remote)));
                    rq.aggregate(
                        &format!("sum[{i}]"),
                        input,
                        window_spec(),
                        sum_key,
                        sum_window,
                    )
                },
            )?;

            let plan = GlPlan::with_config(
                origin_system.clone(),
                PlannerConfig::default()
                    .with_fusion(fusion)
                    .with_checkpoints(CheckpointConfig::new(INTERVAL, Arc::clone(&store))),
            );
            let sums = plan
                .source("readings", VecSource::new(reports.to_vec()))
                .aggregate("sum", window_spec(), sum_key, sum_window, |o: &Reading| o.0)
                .place(shards.placements);
            let (out, provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
                sums,
                "prov",
                shards.provenance_links,
                Duration::from_hours(24),
            );
            let sink = out.collecting_sink("sink");
            Ok((plan.deploy()?, (sink, provenance, shards.group)))
        })
        .expect("recovery must succeed within the attempt budget");
    group.wait().expect("winning attempt's remote instances");

    let tuples = canonical_tuples(&sink);
    let mut lineage: Vec<Lineage> = provenance
        .records()
        .iter()
        .map(|r| {
            let key = (r.sink_ts.as_millis(), format!("{:?}", r.sink_data));
            let sources: BTreeSet<SinkTuple> = r
                .sources
                .iter()
                .map(|s| (s.ts.as_millis(), format!("{:?}", s.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    let recoveries = store.recoveries();
    Run {
        tuples,
        lineage,
        recoveries,
        fault_fired: recoveries > 0,
    }
}

/// Strategy: a timestamp-ordered stream of keyed readings spanning several
/// checkpoint epochs and several window closes.
fn keyed_readings() -> impl Strategy<Value = Vec<(Timestamp, Reading)>> {
    proptest::collection::vec((0u32..4, 0u64..100, 0u64..5), 8..40).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(key, value, gap)| {
                ts += gap; // non-decreasing; repeated timestamps exercise tie-breaking
                (Timestamp::from_secs(ts), (key, value as i64 - 50))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// **Kill a shard thread mid-stream.** For every shard count in {1, 2, 4} and
    /// fusion on/off, a run whose shard aggregate panics at the `kill_at_close`-th
    /// window close recovers from the latest complete checkpoint and produces the
    /// identical sink bytes and identical GeneaLog contribution sets as the
    /// fault-free run of the same plan.
    #[test]
    fn killed_shard_recovers_byte_identically(
        reports in keyed_readings(),
        kill_at_close in 1u64..5,
    ) {
        for shards in [1usize, 2, 4] {
            for fusion in [true, false] {
                let clean = run_local(&reports, shards, fusion, None);
                prop_assert_eq!(clean.recoveries, 0);
                let recovered = run_local(&reports, shards, fusion, Some(kill_at_close));
                if recovered.fault_fired {
                    prop_assert!(
                        recovered.recoveries >= 1,
                        "the injected panic must push the run through recovery"
                    );
                }
                prop_assert_eq!(&clean.tuples, &recovered.tuples);
                prop_assert_eq!(&clean.lineage, &recovered.lineage);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// **Sever a remote link mid-stream.** For every remote shard count in
    /// {1, 2, 4} and fusion on/off at the origin, a distributed run whose shard-0
    /// return link is severed before its `sever_at`-th frame recovers — fresh
    /// links, remote window state restored from the shared store, sources
    /// replayed — and produces the identical sink bytes and stitched GeneaLog
    /// contribution sets as the fault-free distributed run.
    #[test]
    fn severed_remote_link_recovers_byte_identically(
        reports in keyed_readings(),
        sever_at in 1u64..5,
    ) {
        let fault = FaultPlan::with_link_faults(LinkFaults::none().severing_before(sever_at));
        for instances in [1usize, 2, 4] {
            for fusion in [true, false] {
                let clean = run_remote(
                    &reports, instances, fusion, &FaultPlan::default(),
                    NetworkConfig::unlimited(),
                );
                prop_assert_eq!(clean.recoveries, 0);
                let recovered = run_remote(
                    &reports, instances, fusion, &fault, NetworkConfig::unlimited(),
                );
                prop_assert_eq!(&clean.tuples, &recovered.tuples);
                prop_assert_eq!(&clean.lineage, &recovered.lineage);
            }
        }
    }
}

/// **Kill a real TCP socket between two barriers.** The distributed plan runs over
/// loopback sockets; shard 0's return socket is shut down mid-epoch (no goodbye
/// sentinel, exactly like a crashed node), before its 2nd data frame — i.e.
/// between the first two barrier-delimited epochs of the stream. The dropped
/// socket must flow through the ingress as a link-severed close, push the run
/// through `run_with_recovery`, and the re-dialed attempt must produce the
/// identical sink bytes and stitched GeneaLog contribution sets as a fault-free
/// TCP run of the same plan.
#[test]
fn severed_tcp_socket_mid_epoch_recovers_byte_identically() {
    let reports: Vec<(Timestamp, Reading)> = (0..28u64)
        .map(|i| (Timestamp::from_secs(i), ((i % 3) as Key, i as i64 - 10)))
        .collect();
    for instances in [1usize, 2] {
        let clean = run_remote_tcp(&reports, instances, true, None);
        assert_eq!(clean.recoveries, 0, "fault-free TCP run must not recover");
        let recovered = run_remote_tcp(&reports, instances, true, Some(2));
        assert!(
            recovered.fault_fired,
            "the socket shutdown must push the run through recovery"
        );
        assert_eq!(clean.tuples, recovered.tuples);
        assert_eq!(clean.lineage, recovered.lineage);
    }
}

/// Back-pressure during recovery (regression): with a *bounded* link send queue, a
/// severed return link must not deadlock the deployment. The origin's ingress dies
/// and stops pulling the shared return link, so the remote's sends can fill the
/// bounded queue; the link-layer send timeout must unwedge the remote engines so
/// the failed attempt tears down and the replay completes. Run under a watchdog:
/// the historical failure mode is a hang, not a wrong answer.
#[test]
fn bounded_links_with_replay_do_not_deadlock() {
    let reports: Vec<(Timestamp, Reading)> = (0..32u64)
        .map(|i| (Timestamp::from_secs(i), ((i % 3) as Key, i as i64)))
        .collect();
    let bounded = NetworkConfig::unlimited()
        .with_send_queue_frames(2)
        .with_send_timeout(std::time::Duration::from_millis(200));
    let fault = FaultPlan::with_link_faults(LinkFaults::none().severing_before(2));

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let clean = run_remote(&reports, 2, true, &FaultPlan::default(), bounded);
        let recovered = run_remote(&reports, 2, true, &fault, bounded);
        done_tx.send((clean, recovered)).ok();
    });
    let (clean, recovered) = done_rx
        .recv_timeout(std::time::Duration::from_secs(60))
        .expect("bounded-queue recovery deadlocked: the return link never unwedged");
    assert_eq!(clean.tuples, recovered.tuples);
    assert_eq!(clean.lineage, recovered.lineage);
}
