//! Engine-level pinning of the durable checkpoint store (`genealog-store`):
//!
//! * **Incremental ≡ full.** A checkpointed GL query writes every snapshot
//!   through a tee into two on-disk stores at once — one storing every epoch's
//!   container in full, one storing cross-epoch deltas with periodic rebases.
//!   For every `(participant, epoch)` key, the bytes read back from the
//!   incremental store (after a fresh process-style reopen) must be identical
//!   to the full store's — the delta chain is a storage optimisation, never a
//!   semantic one. Pinned by proptest across shard counts × fusion × epoch
//!   counts.
//! * **Write amplification.** On an append-heavy windowed workload the
//!   incremental store must write strictly fewer bytes than the full store —
//!   the BENCH_PR10 claim, asserted here deterministically.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use genealog::prelude::*;
use genealog::GlWindowPersister;
use genealog_spe::persist::is_container;
use genealog_spe::query::ShardPlacement;
use genealog_spe::state::{CheckpointConfig, CheckpointStore, Snapshot, StateBackend};
use genealog_spe::PlannerConfig;
use genealog_store::{DurableBackend, StoreOptions};

type Key = u32;
type Reading = (Key, i64);

const INTERVAL: u64 = 5;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "durable-store-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sum_key(r: &Reading) -> Key {
    r.0
}

fn sum_window(
    w: &genealog_spe::operator::aggregate::WindowView<'_, Key, Reading, GlMeta>,
) -> Reading {
    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
}

/// Writes every byte snapshot into both stores; the engine reads (and
/// restores) through the full side. Records which `(participant, epoch)` keys
/// carry byte snapshots so the test can enumerate them afterwards.
#[derive(Debug)]
struct TeeBackend {
    full: Arc<DurableBackend>,
    incremental: Arc<DurableBackend>,
    keys: Mutex<BTreeSet<(String, u64)>>,
}

impl StateBackend for TeeBackend {
    fn name(&self) -> &'static str {
        "tee(full, incremental)"
    }

    fn put(&self, participant: &str, epoch: u64, snapshot: Snapshot) {
        if matches!(snapshot, Snapshot::Bytes(_)) {
            self.keys
                .lock()
                .unwrap()
                .insert((participant.to_string(), epoch));
        }
        self.full.put(participant, epoch, snapshot.clone());
        self.incremental.put(participant, epoch, snapshot);
    }

    fn get(&self, participant: &str, epoch: u64) -> Option<Snapshot> {
        self.full.get(participant, epoch)
    }

    fn remove_after(&self, epoch: u64) {
        self.full.remove_after(epoch);
        self.incremental.remove_after(epoch);
    }

    fn snapshot_count(&self) -> usize {
        self.full.snapshot_count()
    }

    fn serialized_bytes(&self) -> usize {
        self.full.serialized_bytes()
    }

    fn bytes_written(&self) -> u64 {
        self.full.bytes_written()
    }

    fn note_complete_epoch(&self, epoch: u64) {
        self.full.note_complete_epoch(epoch);
        self.incremental.note_complete_epoch(epoch);
    }

    fn is_durable(&self) -> bool {
        true
    }
}

/// Outcome of one teed run: the recorded byte-snapshot keys, the directories
/// of the two stores, and each store's cumulative write counter. Both store
/// handles are dropped before this returns, so reopening models a restarted
/// process.
struct TeedRun {
    keys: BTreeSet<(String, u64)>,
    full_dir: PathBuf,
    incremental_dir: PathBuf,
    full_written: u64,
    incremental_written: u64,
    latest_complete: Option<u64>,
}

fn run_teed(
    reports: &[(Timestamp, Reading)],
    shards: usize,
    fusion: bool,
    window: WindowSpec,
) -> TeedRun {
    let full_dir = temp_dir("full");
    let incremental_dir = temp_dir("incr");
    let full = DurableBackend::open_with(&full_dir, StoreOptions::default()).unwrap();
    let incremental =
        DurableBackend::open_with(&incremental_dir, StoreOptions::incremental()).unwrap();
    let tee = Arc::new(TeeBackend {
        full: Arc::clone(&full),
        incremental: Arc::clone(&incremental),
        keys: Mutex::new(BTreeSet::new()),
    });
    let store = CheckpointStore::new(Arc::clone(&tee) as Arc<dyn StateBackend>);

    let plan =
        GlPlan::with_config(
            GeneaLog::new(),
            PlannerConfig::default()
                .with_fusion(fusion)
                .with_checkpoints(
                    CheckpointConfig::new(INTERVAL, Arc::clone(&store))
                        .with_window_persister::<Key, Reading, GlMeta>(Arc::new(
                            GlWindowPersister::<Key, Reading, Reading>::new(),
                        )),
                ),
        );
    let sums = plan
        .source("readings", VecSource::new(reports.to_vec()))
        .aggregate("sum", window, sum_key, sum_window, |o: &Reading| o.0)
        .place(ShardPlacement::<GeneaLog, Reading, Reading>::all_local(
            shards,
        ));
    let (out, _provenance) = logical_provenance_sink(sums, "prov");
    let _sink = out.collecting_sink("sink");
    plan.deploy().unwrap().wait().unwrap();

    full.flush().unwrap();
    incremental.flush().unwrap();
    let keys = tee.keys.lock().unwrap().clone();
    TeedRun {
        keys,
        full_dir,
        incremental_dir,
        full_written: full.bytes_written(),
        incremental_written: incremental.bytes_written(),
        latest_complete: store.latest_complete_epoch(),
    }
}

/// Reopens both stores as a restarted process would and asserts every recorded
/// `(participant, epoch)` byte snapshot reads back identically from the
/// incremental store and the full store. Returns how many of those snapshots
/// were window containers (so callers can assert coverage).
fn assert_reopened_stores_identical(run: &TeedRun) -> usize {
    let full = DurableBackend::open_with(&run.full_dir, StoreOptions::default()).unwrap();
    let incremental =
        DurableBackend::open_with(&run.incremental_dir, StoreOptions::incremental()).unwrap();
    assert_eq!(full.latest_complete_epoch(), run.latest_complete);
    assert_eq!(incremental.latest_complete_epoch(), run.latest_complete);

    let mut containers = 0;
    for (participant, epoch) in &run.keys {
        let from_full = full
            .get(participant, *epoch)
            .unwrap_or_else(|| panic!("full store lost {participant}@{epoch}"));
        let from_incremental = incremental
            .get(participant, *epoch)
            .unwrap_or_else(|| panic!("incremental store lost {participant}@{epoch}"));
        let full_bytes = from_full.as_bytes().expect("byte snapshot");
        let incremental_bytes = from_incremental.as_bytes().expect("byte snapshot");
        assert_eq!(
            full_bytes, incremental_bytes,
            "delta-reconstructed {participant}@{epoch} diverged from the full snapshot"
        );
        if is_container(full_bytes) {
            containers += 1;
        }
    }
    containers
}

fn keyed_readings() -> impl Strategy<Value = Vec<(Timestamp, Reading)>> {
    proptest::collection::vec((0u32..4, 0u64..100, 0u64..5), 8..40).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(key, value, gap)| {
                ts += gap;
                (Timestamp::from_secs(ts), (key, value as i64 - 50))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// **Incremental snapshots are byte-identical to full snapshots**, pinned
    /// across shard counts {1, 2}, fusion on/off and however many epochs the
    /// generated stream spans: a checkpointed GL run teed into both store
    /// modes reads back, after reopening both directories, the exact same
    /// bytes for every `(participant, epoch)` — window containers (provenance
    /// included) and plain byte snapshots alike.
    #[test]
    fn incremental_snapshots_read_back_identical_to_full(reports in keyed_readings()) {
        let window = WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap();
        for shards in [1usize, 2] {
            for fusion in [false, true] {
                let run = run_teed(&reports, shards, fusion, window);
                prop_assert!(!run.keys.is_empty(), "the run must commit byte snapshots");
                let containers = assert_reopened_stores_identical(&run);
                if run.latest_complete.is_some() {
                    prop_assert!(
                        containers > 0,
                        "at least one committed window container expected once an epoch completes"
                    );
                }
                prop_assert!(
                    run.incremental_written <= run.full_written,
                    "incremental mode must never write more than full mode \
                     ({} vs {} bytes)",
                    run.incremental_written,
                    run.full_written
                );
            }
        }
    }
}

/// **The write-amplification win.** On an append-heavy workload — one long
/// window accumulating tuples over many epochs — the incremental store ships
/// per-epoch deltas (plus periodic rebases) instead of the ever-growing full
/// container, and must write strictly fewer bytes.
#[test]
fn incremental_mode_writes_strictly_fewer_bytes_on_append_heavy_windows() {
    let window = WindowSpec::new(Duration::from_secs(64), Duration::from_secs(32)).unwrap();
    let reports: Vec<(Timestamp, Reading)> = (0..60u64)
        .map(|i| (Timestamp::from_secs(i), (0u32, i as i64)))
        .collect();
    let run = run_teed(&reports, 1, false, window);
    assert!(run.latest_complete.is_some());
    let containers = assert_reopened_stores_identical(&run);
    assert!(containers > 0);
    assert!(
        run.incremental_written < run.full_written,
        "append-heavy windows must show the incremental write-amplification win \
         ({} vs {} bytes)",
        run.incremental_written,
        run.full_written
    );
}
