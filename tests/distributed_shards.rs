//! Cross-process shard equivalence: a key-partitioned operator whose shards run on
//! *remote SPE instances* (Partition exchange → instrumented Send → link → remote
//! `Receive → shard operator → Send` → link → Receive → provenance-safe fan-in) must
//! be invisible in the results. Against the single-instance local plan we pin:
//!
//! * **sink bytes** — same tuples in the same `(timestamp, key, per-key emission
//!   order)` canonical order, for any shard count and placement;
//! * **GeneaLog contribution sets** — identical per-sink-tuple source sets once the
//!   REMOTE originating tuples are stitched by the multi-stream unfolder (§6),
//!   mirroring the local-shard pins of `tests/parallel_execution.rs`.
//!
//! GeneaLog tuple *ids* are allocated per instance and legitimately differ between
//! the plans, so the comparisons use timestamps, payloads and contribution sets.

use std::collections::BTreeSet;

use proptest::prelude::*;

use genealog::prelude::*;
use genealog_distributed::deployment::{
    instances_dot, logical_shard_provenance_sink, remote_shard_group, remote_shard_group_gl_over,
    ShardTransport, SimulatedTransport,
};
use genealog_distributed::{NetworkConfig, TcpLoopbackTransport};
use genealog_spe::logical::LogicalPlan;
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::parallel::Parallelism;
use genealog_spe::provenance::NoProvenance;
use genealog_spe::query::{NodeKind, QueryConfig, ShardPlacement};
use genealog_spe::{PlannerConfig, Query};

type Key = u32;
type Reading = (Key, i64);
/// `(ts_millis, debug-rendered payload)` — the byte-level identity of a sink tuple.
type SinkTuple = (u64, String);
/// A sink tuple plus the canonical set of source tuples contributing to it.
type Lineage = (SinkTuple, BTreeSet<SinkTuple>);

fn window_spec() -> WindowSpec {
    WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap()
}

fn sum_key(r: &Reading) -> Key {
    r.0
}

fn sum_window(w: &WindowView<'_, Key, Reading, GlMeta>) -> Reading {
    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
}

/// The single-instance reference: `source -> sharded_aggregate(instances(1)) -> sink`
/// under GeneaLog, provenance unfolded in-process.
fn run_gl_local(reports: &[(Timestamp, Reading)]) -> (Vec<SinkTuple>, Vec<Lineage>) {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("readings", VecSource::new(reports.to_vec()));
    let sums = q.sharded_aggregate(
        "sum",
        src,
        window_spec(),
        sum_key,
        sum_window,
        |o: &Reading| o.0,
        Parallelism::instances(1),
    );
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", sums);
    let sink = q.collecting_sink("sink", out);
    q.deploy().unwrap().wait().unwrap();

    let tuples = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    let mut lineage: Vec<Lineage> = provenance
        .assignments()
        .iter()
        .map(|a| {
            let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
            let sources: BTreeSet<SinkTuple> = a
                .source_records::<Reading>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    (tuples, lineage)
}

/// The distributed plan: every shard of the aggregate runs on its own remote SPE
/// instance; lineage is stitched across the REMOTE boundary by the MU. Runs over
/// the in-process [`SimulatedTransport`].
fn run_gl_remote(
    reports: &[(Timestamp, Reading)],
    instances: usize,
    fused_stages: bool,
) -> (Vec<SinkTuple>, Vec<Lineage>) {
    let transport = SimulatedTransport::new(NetworkConfig::unlimited());
    run_gl_remote_over(reports, instances, fused_stages, &transport)
}

/// [`run_gl_remote`] with the link substrate swapped in: the same plan must hold
/// over any [`ShardTransport`], real loopback TCP sockets included.
fn run_gl_remote_over(
    reports: &[(Timestamp, Reading)],
    instances: usize,
    fused_stages: bool,
    transport: &dyn ShardTransport,
) -> (Vec<SinkTuple>, Vec<Lineage>) {
    // Remote engines get fusion so the (optional) stateless stages inside a shard
    // collapse into one thread there — results must not change either way.
    let remote_config = QueryConfig::default().with_fusion(fused_stages);
    let shards = remote_shard_group_gl_over::<Reading, Reading, _>(
        "sum",
        instances,
        1, // remote instances use GeneaLog id namespaces 1..=instances
        transport,
        remote_config,
        move |rq, _i, input| {
            let staged = if fused_stages {
                let kept = rq.filter("keep", input, |r: &Reading| r.1 % 3 != 0);
                rq.map_one("scale", kept, |r: &Reading| (r.0, r.1 * 2))
            } else {
                input
            };
            rq.aggregate("sum", staged, window_spec(), sum_key, sum_window)
        },
    )
    .unwrap();

    let plan = GlPlan::new(GeneaLog::for_instance(0));
    let sums = plan
        .source("readings", VecSource::new(reports.to_vec()))
        .aggregate("sum", window_spec(), sum_key, sum_window, |o: &Reading| o.0)
        .place(shards.placements);
    let (out, provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
        sums,
        "prov",
        shards.provenance_links,
        Duration::from_hours(24),
    );
    let sink = out.collecting_sink("sink");
    plan.deploy().unwrap().wait().unwrap();
    shards.group.wait().unwrap();

    let tuples = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    let mut lineage: Vec<Lineage> = provenance
        .records()
        .iter()
        .map(|r| {
            let key = (r.sink_ts.as_millis(), format!("{:?}", r.sink_data));
            let sources: BTreeSet<SinkTuple> = r
                .sources
                .iter()
                .map(|s| (s.ts.as_millis(), format!("{:?}", s.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    (tuples, lineage)
}

/// The single-instance reference for the fused-remote-shard plan: the same stateless
/// stages ahead of the same aggregate, all in one process, unfused.
fn run_gl_local_staged(reports: &[(Timestamp, Reading)]) -> (Vec<SinkTuple>, Vec<Lineage>) {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("readings", VecSource::new(reports.to_vec()));
    let kept = q.filter("keep", src, |r: &Reading| r.1 % 3 != 0);
    let scaled = q.map_one("scale", kept, |r: &Reading| (r.0, r.1 * 2));
    let sums = q.aggregate("sum", scaled, window_spec(), sum_key, sum_window);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", sums);
    let sink = q.collecting_sink("sink", out);
    q.deploy().unwrap().wait().unwrap();

    let tuples = sink
        .tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect();
    let mut lineage: Vec<Lineage> = provenance
        .assignments()
        .iter()
        .map(|a| {
            let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
            let sources: BTreeSet<SinkTuple> = a
                .source_records::<Reading>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    (tuples, lineage)
}

/// Strategy: a timestamp-ordered stream of keyed readings with random keys, values
/// and (possibly repeating) timestamp gaps — the same shape as the local-shard pins.
fn keyed_readings() -> impl Strategy<Value = Vec<(Timestamp, Reading)>> {
    proptest::collection::vec((0u32..8, 0u64..200, 0u64..5), 1..60).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(key, value, gap)| {
                ts += gap; // non-decreasing; repeated timestamps exercise tie-breaking
                (Timestamp::from_secs(ts), (key, value as i64 - 100))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole guarantee: for random key/timestamp interleavings, an aggregate
    /// whose 3 shards each run on a remote SPE instance produces the identical sink
    /// stream and identical GeneaLog contribution sets as the local single-instance
    /// plan — the REMOTE boundary is invisible.
    #[test]
    fn remote_sharded_aggregate_equals_local_single_instance(reports in keyed_readings()) {
        let (local_tuples, local_lineage) = run_gl_local(&reports);
        let (remote_tuples, remote_lineage) = run_gl_remote(&reports, 3, false);
        prop_assert_eq!(local_tuples, remote_tuples);
        prop_assert_eq!(local_lineage, remote_lineage);
    }

    /// Fused stateless stages *inside* a remote shard (filter → map collapsed into
    /// one thread on the remote instance) change neither the sink bytes nor the
    /// contribution sets against the unfused single-instance plan.
    #[test]
    fn fused_stages_inside_remote_shards_are_equivalent(reports in keyed_readings()) {
        let (local_tuples, local_lineage) = run_gl_local_staged(&reports);
        let (remote_tuples, remote_lineage) = run_gl_remote(&reports, 2, true);
        prop_assert_eq!(local_tuples, remote_tuples);
        prop_assert_eq!(local_lineage, remote_lineage);
    }
}

proptest! {
    // Real sockets per case are slower than channels; fewer cases keep the suite
    // within the tier-1 budget while still randomising keys and timestamps.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The same tentpole guarantee over *real loopback TCP sockets*: substituting
    /// the simulated links with length-delimited frames over `TcpLink` changes
    /// neither the sink bytes nor the GeneaLog contribution sets.
    #[test]
    fn tcp_remote_shards_equal_local_over_loopback_sockets(reports in keyed_readings()) {
        let transport = TcpLoopbackTransport::new(NetworkConfig::unlimited());
        let (local_tuples, local_lineage) = run_gl_local(&reports);
        let (remote_tuples, remote_lineage) = run_gl_remote_over(&reports, 3, false, &transport);
        prop_assert_eq!(local_tuples, remote_tuples);
        prop_assert_eq!(local_lineage, remote_lineage);
    }

    /// Fused remote stages over TCP: stage fusion inside the remote instance and a
    /// real socket under the link compose without changing results or lineage.
    #[test]
    fn tcp_fused_remote_shards_are_equivalent(reports in keyed_readings()) {
        let transport = TcpLoopbackTransport::new(NetworkConfig::unlimited());
        let (local_tuples, local_lineage) = run_gl_local_staged(&reports);
        let (remote_tuples, remote_lineage) = run_gl_remote_over(&reports, 2, true, &transport);
        prop_assert_eq!(local_tuples, remote_tuples);
        prop_assert_eq!(local_lineage, remote_lineage);
    }
}

/// Under NoProvenance the remote-sharded plan must match the plain single-instance
/// `aggregate` operator byte for byte, for 1, 2 and 4 remote shards.
#[test]
fn np_remote_shards_match_plain_aggregate() {
    let reports: Vec<(Timestamp, Reading)> = (0..160u64)
        .map(|i| (Timestamp::from_secs(i / 4), ((i % 7) as Key, i as i64)))
        .collect();
    let spec = WindowSpec::new(Duration::from_secs(12), Duration::from_secs(6)).unwrap();
    let agg =
        |w: &WindowView<'_, Key, Reading, ()>| (*w.key, w.payloads().map(|p| p.1).sum::<i64>());

    let plain = {
        let mut q = Query::new(NoProvenance);
        let src = q.source("readings", VecSource::new(reports.clone()));
        let sums = q.aggregate("sum", src, spec, sum_key, agg);
        let out = q.collecting_sink("sink", sums);
        q.deploy().unwrap().wait().unwrap();
        out.tuples()
            .iter()
            .map(|t| (t.ts.as_millis(), t.data))
            .collect::<Vec<_>>()
    };
    assert!(!plain.is_empty());

    for instances in [1usize, 2, 4] {
        let (placements, group) = remote_shard_group::<NoProvenance, Reading, Reading, _, _>(
            "sum",
            instances,
            NetworkConfig::unlimited(),
            QueryConfig::default(),
            |_| NoProvenance,
            move |rq, _i, input| rq.aggregate("sum", input, spec, sum_key, agg),
        )
        .unwrap();
        let plan = LogicalPlan::new(NoProvenance);
        let out = plan
            .source("readings", VecSource::new(reports.clone()))
            .aggregate("sum", spec, sum_key, agg, |o: &Reading| o.0)
            .place(placements)
            .collecting_sink("sink");
        plan.deploy().unwrap().wait().unwrap();
        group.wait().unwrap();
        let remote: Vec<_> = out
            .tuples()
            .iter()
            .map(|t| (t.ts.as_millis(), t.data))
            .collect();
        assert_eq!(
            plain, remote,
            "{instances} remote shards must equal the single-instance operator"
        );
        assert!(!remote.is_empty());
    }
}

/// Local and remote shards mix within one group: the fan-in and the results are the
/// same as the all-local plan.
#[test]
fn mixed_local_and_remote_shards_are_equivalent() {
    let reports: Vec<(Timestamp, Reading)> = (0..120u64)
        .map(|i| (Timestamp::from_secs(i / 3), ((i % 5) as Key, i as i64)))
        .collect();
    let spec = WindowSpec::tumbling(Duration::from_secs(6)).unwrap();
    let agg =
        |w: &WindowView<'_, Key, Reading, ()>| (*w.key, w.payloads().map(|p| p.1).sum::<i64>());

    let run = |placements: Vec<ShardPlacement<NoProvenance, Reading, Reading>>| {
        let plan = LogicalPlan::new(NoProvenance);
        let out = plan
            .source("readings", VecSource::new(reports.clone()))
            .aggregate("sum", spec, sum_key, agg, |o: &Reading| o.0)
            .place(placements)
            .collecting_sink("sink");
        plan.deploy().unwrap().wait().unwrap();
        out.tuples()
            .iter()
            .map(|t| (t.ts.as_millis(), t.data))
            .collect::<Vec<_>>()
    };

    let all_local = run(ShardPlacement::all_local(3));
    assert!(!all_local.is_empty());

    // Shard 1 of 3 runs remotely, shards 0 and 2 stay local. The remote group is
    // built with a single instance whose shard index within the group is 1.
    let (mut remote_placements, group) =
        remote_shard_group::<NoProvenance, Reading, Reading, _, _>(
            "sum",
            1,
            NetworkConfig::unlimited(),
            QueryConfig::default(),
            |_| NoProvenance,
            move |rq, _i, input| rq.aggregate("sum", input, spec, sum_key, agg),
        )
        .unwrap();
    let placements = vec![
        ShardPlacement::Local,
        remote_placements.pop().expect("one remote placement"),
        ShardPlacement::Local,
    ];
    let mixed = run(placements);
    group.wait().unwrap();
    assert_eq!(all_local, mixed, "placement must not change the results");
}

/// Shard-channel budgeting over links: `Query::edge_budgets` accounts the egress and
/// ingress edges of remote shards exactly like local shard channels — the N channels
/// of the exchange (and of the fan-in) jointly share the configured per-edge element
/// budget, for n ∈ {1, 2, 4}.
#[test]
fn remote_shard_edges_share_the_edge_budget() {
    let config = QueryConfig::default(); // 1024 elements, batch 32
    let spec = WindowSpec::tumbling(Duration::from_secs(4)).unwrap();
    let agg = |w: &WindowView<'_, Key, Reading, ()>| (*w.key, w.len() as i64);
    for n in [1usize, 2, 4] {
        let (placements, group) = remote_shard_group::<NoProvenance, Reading, Reading, _, _>(
            "agg",
            n,
            NetworkConfig::unlimited(),
            config,
            |_| NoProvenance,
            move |rq, _i, input| rq.aggregate("agg", input, spec, sum_key, agg),
        )
        .unwrap();
        let plan = LogicalPlan::with_config(
            NoProvenance,
            PlannerConfig::default()
                .with_channel_capacity(config.channel_capacity)
                .with_fusion(false),
        );
        let items: Vec<Reading> = (0..8).map(|i| (i % 4, i as i64)).collect();
        let _ = plan
            .source("src", VecSource::with_period(items, 1_000))
            .aggregate("agg", spec, sum_key, agg, |o: &Reading| o.0)
            .place(placements)
            .collecting_sink("sink");
        let q = plan.lower().unwrap();

        let kinds: Vec<NodeKind> = q.node_summaries().iter().map(|(_, k)| *k).collect();
        let mut exchange_total = 0usize;
        let mut fanin_total = 0usize;
        for ((from, to), budget) in q.edges().iter().zip(q.edge_budgets()) {
            if kinds[*from] == NodeKind::Partition {
                exchange_total += budget;
            }
            if kinds[*to] == NodeKind::ShardMerge {
                fanin_total += budget;
            }
        }
        assert_eq!(
            exchange_total, config.channel_capacity,
            "{n}-shard remote exchange headroom must equal the configured capacity"
        );
        assert_eq!(
            fanin_total, config.channel_capacity,
            "{n}-shard remote fan-in headroom must equal the configured capacity"
        );
        // Dropping the undeployed origin query closes the forward links; the remote
        // instances drain on their own.
        drop(q);
        group.wait().unwrap();
    }
}

/// Per-instance reports fold into one distributed report: the shard group spanning
/// SPE instances reports as ONE operator with an `instances` count, matching the
/// local-shard report shape of `tests/parallel_execution.rs`.
#[test]
fn distributed_shard_group_reports_fold_into_one_operator() {
    let spec = WindowSpec::tumbling(Duration::from_secs(10)).unwrap();
    let agg = |w: &WindowView<'_, Key, Reading, ()>| (*w.key, w.len() as i64);
    let (placements, group) = remote_shard_group::<NoProvenance, Reading, Reading, _, _>(
        "agg",
        3,
        NetworkConfig::unlimited(),
        QueryConfig::default(),
        |_| NoProvenance,
        move |rq, _i, input| rq.aggregate("agg", input, spec, sum_key, agg),
    )
    .unwrap();
    let plan = LogicalPlan::with_config(NoProvenance, PlannerConfig::default().with_fusion(false));
    let items: Vec<Reading> = (0..40).map(|i| (i % 5, i as i64)).collect();
    let out = plan
        .source("src", VecSource::with_period(items, 1_000))
        .aggregate("agg", spec, sum_key, agg, |o: &Reading| o.0)
        .place(placements)
        .collecting_sink("sink");
    let origin_report = plan.deploy().unwrap().wait().unwrap();
    let remote_reports = group.wait().unwrap();
    assert!(!out.is_empty());

    let merged =
        QueryReport::merge_distributed(std::iter::once(origin_report).chain(remote_reports));
    // The three remote aggregate threads appear as ONE report named after the
    // logical operator, with summed counters covering the whole input.
    let agg_report = merged.operator("agg").expect("folded shard report");
    assert_eq!(agg_report.instances, 3);
    assert_eq!(agg_report.stats.tuples_in, 40);
    assert_eq!(agg_report.stats.tuples_out, out.len() as u64);
    // The per-shard endpoints fold the same way, on both sides of each link.
    assert_eq!(merged.operator("agg.egress").unwrap().instances, 3);
    assert_eq!(merged.operator("agg.egress").unwrap().stats.tuples_in, 40);
    assert_eq!(merged.operator("agg.recv").unwrap().instances, 3);
    assert_eq!(merged.operator("agg.recv").unwrap().stats.tuples_out, 40);
    assert_eq!(merged.operator("agg.send").unwrap().instances, 3);
    assert_eq!(merged.operator("agg.ingress").unwrap().instances, 3);
    // The exchange and the fan-in stay single-threaded on the origin.
    assert_eq!(merged.operator("agg.exchange").unwrap().instances, 1);
    assert_eq!(merged.operator("agg.merge").unwrap().instances, 1);
}

/// The combined DOT export renders every SPE instance as its own cluster with the
/// Send/Receive endpoints marked, making the process boundaries visible.
#[test]
fn distributed_plan_renders_instance_clusters() {
    let spec = WindowSpec::tumbling(Duration::from_secs(4)).unwrap();
    let agg = |w: &WindowView<'_, Key, Reading, ()>| (*w.key, w.len() as i64);

    // Build (without deploying) one remote instance's plan and an origin plan.
    let mut remote = Query::new(NoProvenance);
    let (_tx, rx, _stats) = genealog_distributed::SimulatedLink::new(NetworkConfig::unlimited());
    let received: genealog_spe::StreamRef<Reading, ()> =
        genealog_distributed::deployment::add_receive(&mut remote, "agg.recv", rx);
    let sums = remote.aggregate("agg", received, spec, sum_key, agg);
    let (tx2, _rx2, _stats2) = genealog_distributed::SimulatedLink::new(NetworkConfig::unlimited());
    genealog_distributed::deployment::add_send(&mut remote, "agg.send", sums, tx2);

    let mut origin = Query::new(NoProvenance);
    let src = origin.source("src", VecSource::with_period(vec![(0u32, 0i64)], 1_000));
    let (tx3, _rx3, _stats3) = genealog_distributed::SimulatedLink::new(NetworkConfig::unlimited());
    genealog_distributed::deployment::add_send(&mut origin, "agg.egress[0]", src, tx3);

    let dot = instances_dot(&[
        ("origin".to_string(), origin.to_dot_fragment("i0_")),
        ("instance 1".to_string(), remote.to_dot_fragment("i1_")),
    ]);
    assert!(dot.contains("subgraph cluster_0"));
    assert!(dot.contains("subgraph cluster_1"));
    assert!(dot.contains("label=\"origin\""));
    assert!(dot.contains("label=\"instance 1\""));
    // The endpoints are drawn with the instance-boundary shape.
    assert!(dot.contains("shape=cds label=\"agg.egress[0]\\n(send)\""));
    assert!(dot.contains("shape=cds label=\"agg.recv\\n(receive)\""));
    // Node ids are namespaced per instance, so the fragments cannot collide.
    assert!(dot.contains("i0_0") && dot.contains("i1_0"));
}
