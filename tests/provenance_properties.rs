//! Property-based tests (proptest) of the core invariants:
//!
//! * GeneaLog provenance of a Q1-style query equals the brute-force oracle for
//!   arbitrary input streams;
//! * the traversal only ever returns SOURCE/REMOTE tuples and visits each node once;
//! * window assignment covers exactly the tuples inside `[start, start + WS)`;
//! * the wire codec round-trips arbitrary values;
//! * the deterministic merge produces a timestamp-sorted interleaving of its inputs.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use genealog::prelude::*;
use genealog_distributed::wire::{WireDecode, WireEncode};
use genealog_spe::channel::stream_channel;
use genealog_spe::merge::{DeterministicMerge, MergedElement};
use genealog_spe::provenance::{ProvenanceSystem, SourceContext};
use genealog_spe::tuple::{Element, GTuple};
use genealog_spe::WindowSpec;
use genealog_workloads::oracle::q1_oracle;
use genealog_workloads::queries::build_q1;
use genealog_workloads::types::PositionReport;

/// Strategy: a timestamp-ordered stream of position reports where cars may stall.
fn position_reports() -> impl Strategy<Value = Vec<(Timestamp, PositionReport)>> {
    // Up to 6 cars, up to 20 rounds, each report either moving or stopped at pos 5.
    (
        2u32..6,
        4u32..20,
        proptest::collection::vec(any::<bool>(), 8..120),
    )
        .prop_map(|(cars, rounds, stalls)| {
            let mut out = Vec::new();
            let mut stall_iter = stalls.into_iter().cycle();
            for round in 0..rounds {
                for car in 0..cars {
                    let stalled = stall_iter.next().unwrap_or(false);
                    let report = if stalled {
                        PositionReport {
                            car_id: car,
                            speed: 0,
                            pos: 5,
                        }
                    } else {
                        PositionReport {
                            car_id: car,
                            speed: 50,
                            pos: round * 10 + car,
                        }
                    };
                    out.push((Timestamp::from_secs(round as u64 * 30), report));
                }
            }
            out
        })
}

fn canonical(
    sources: impl IntoIterator<Item = (Timestamp, PositionReport)>,
) -> BTreeSet<(u64, String)> {
    sources
        .into_iter()
        .map(|(ts, r)| (ts.as_millis(), format!("{r:?}")))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn genealog_q1_provenance_equals_oracle_for_random_streams(reports in position_reports()) {
        let oracle = q1_oracle(&reports);
        let mut q = GlQuery::new(GeneaLog::new());
        let src = q.source("reports", VecSource::new(reports.clone()));
        let alerts = build_q1(&mut q, src);
        let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
        q.discard(out);
        q.deploy().unwrap().wait().unwrap();

        let gl_sets: BTreeSet<BTreeSet<(u64, String)>> = provenance
            .assignments()
            .iter()
            .map(|a| {
                a.source_records::<PositionReport>()
                    .into_iter()
                    .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                    .collect()
            })
            .collect();
        let oracle_sets: BTreeSet<BTreeSet<(u64, String)>> = oracle
            .iter()
            .map(|a| canonical(a.sources.iter().copied()))
            .collect();
        prop_assert_eq!(gl_sets, oracle_sets);
    }

    #[test]
    fn traversal_returns_only_terminal_nodes(window_size in 1usize..64) {
        let gl = GeneaLog::new();
        let window: Vec<Arc<GTuple<i64, genealog::GlMeta>>> = (0..window_size as u64)
            .map(|i| {
                let ctx = SourceContext { source_id: 0, seq: i, ts: Timestamp::from_secs(i) };
                let meta = gl.source_meta(&ctx, &(i as i64));
                Arc::new(GTuple::new(Timestamp::from_secs(i), 0, i as i64, meta))
            })
            .collect();
        let agg = Arc::new(GTuple::new(
            Timestamp::from_secs(0),
            0,
            0i64,
            gl.aggregate_meta(&window),
        ));
        let (provenance, stats) = find_provenance_with_stats(&genealog::meta::erase(&agg));
        prop_assert_eq!(provenance.len(), window_size);
        prop_assert!(provenance.iter().all(|p| p.kind().is_terminal()));
        prop_assert!(stats.nodes_visited >= window_size);
        prop_assert!(stats.nodes_visited <= window_size + 1);
    }

    #[test]
    fn window_assignment_covers_exactly_the_window_span(
        ts in 0u64..100_000,
        size_steps in 1u64..16,
        advance in 1u64..5_000,
    ) {
        let advance = Duration::from_millis(advance);
        let size = Duration::from_millis(advance.as_millis() * size_steps);
        let spec = WindowSpec::new(size, advance).unwrap();
        let ts = Timestamp::from_millis(ts);
        let starts = spec.window_starts(ts);
        prop_assert!(!starts.is_empty());
        // Every reported window contains the tuple; windows are aligned to the advance.
        for start in &starts {
            prop_assert!(*start <= ts);
            prop_assert!(ts < *start + size);
            prop_assert_eq!(start.as_millis() % advance.as_millis(), 0);
        }
        // No window was missed: the aligned window immediately before the earliest
        // reported one must not contain the tuple.
        if let Some(first) = starts.first() {
            if *first > Timestamp::MIN {
                let previous = first.saturating_sub(advance);
                prop_assert!(!(previous <= ts && ts < previous + size) || previous == *first);
            }
        }
        prop_assert!(starts.len() as u64 <= spec.windows_per_tuple());
    }

    #[test]
    fn wire_codec_round_trips_arbitrary_reports(
        car_id in any::<u32>(),
        speed in any::<u32>(),
        pos in any::<u32>(),
        meter in any::<u32>(),
        consumption in any::<u32>(),
        hour in 0u32..24,
    ) {
        let report = PositionReport { car_id, speed, pos };
        prop_assert_eq!(PositionReport::from_bytes(&report.to_bytes()).unwrap(), report);
        let reading = genealog_workloads::types::MeterReading {
            meter_id: meter,
            consumption,
            hour_of_day: hour,
        };
        prop_assert_eq!(
            genealog_workloads::types::MeterReading::from_bytes(&reading.to_bytes()).unwrap(),
            reading
        );
    }

    #[test]
    fn deterministic_merge_sorts_any_pair_of_sorted_streams(
        mut left in proptest::collection::vec(0u64..10_000, 0..50),
        mut right in proptest::collection::vec(0u64..10_000, 0..50),
    ) {
        left.sort_unstable();
        right.sort_unstable();
        let (ltx, lrx) = stream_channel::<u64, ()>(256);
        let (rtx, rrx) = stream_channel::<u64, ()>(256);
        for &ts in &left {
            ltx.send(Element::Tuple(Arc::new(GTuple::new(Timestamp::from_millis(ts), 0, ts, ())))).unwrap();
        }
        ltx.send(Element::End).unwrap();
        for &ts in &right {
            rtx.send(Element::Tuple(Arc::new(GTuple::new(Timestamp::from_millis(ts), 0, ts, ())))).unwrap();
        }
        rtx.send(Element::End).unwrap();

        let mut merge = DeterministicMerge::new(vec![lrx, rrx]);
        let mut merged = Vec::new();
        loop {
            match merge.next() {
                MergedElement::Tuple(t, _) => merged.push(t.data),
                MergedElement::Watermark(_) | MergedElement::Barrier(_) => {}
                MergedElement::End => break,
            }
        }
        let mut expected = [left, right].concat();
        expected.sort_unstable();
        prop_assert_eq!(merged, expected);
    }
}
