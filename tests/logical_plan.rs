//! Logical-plan equivalence: a query written **once** on the declarative
//! [`LogicalPlan`] builder and lowered by the planner must be indistinguishable from
//! the hand-built legacy `Query` — on **sink bytes** (same tuples in the same
//! canonical order) and on **GeneaLog contribution sets** — across:
//!
//! * shard counts 1, 2 and 4 (annotation `.with(Parallelism::shards(n))`),
//! * local, remote and mixed shard placements (annotation `.place(..)` fed by the
//!   `remote_shard_group{,_gl}` helpers),
//! * fusion on (the planner default) and off.
//!
//! The per-stage counters of fused chains must also survive in reports
//! (`OperatorReport::stages`), so turning fusion on by default loses no telemetry.

use std::collections::BTreeSet;

use proptest::prelude::*;

use genealog::prelude::*;
use genealog_distributed::deployment::{
    logical_shard_provenance_sink, remote_shard_group, remote_shard_group_gl,
};
use genealog_distributed::NetworkConfig;
use genealog_spe::logical::LogicalPlan;
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::provenance::{MetaData, NoProvenance};
use genealog_spe::query::{NodeKind, QueryConfig, ShardPlacement};
use genealog_spe::{PlannerConfig, Query};

type Key = u32;
type Reading = (Key, i64);
/// `(ts_millis, debug-rendered payload)` — the byte-level identity of a sink tuple.
type SinkTuple = (u64, String);
/// A sink tuple plus the canonical set of source tuples contributing to it.
type Lineage = (SinkTuple, BTreeSet<SinkTuple>);

fn window_spec() -> WindowSpec {
    WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap()
}

fn keep(r: &Reading) -> bool {
    r.1 % 3 != 0
}

fn scale(r: &Reading) -> Reading {
    (r.0, r.1 * 2)
}

fn sum_key(r: &Reading) -> Key {
    r.0
}

fn sum_window<M: MetaData>(w: &WindowView<'_, Key, Reading, M>) -> Reading {
    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
}

fn busy(o: &Reading) -> bool {
    o.1 % 5 != 0
}

fn sink_tuples<T, M>(sink: &CollectedStream<T, M>) -> Vec<SinkTuple>
where
    T: genealog_spe::tuple::TupleData,
    M: MetaData,
{
    sink.tuples()
        .iter()
        .map(|t| (t.ts.as_millis(), format!("{:?}", t.data)))
        .collect()
}

fn lineage_of(provenance: &ProvenanceCollector<Reading>) -> Vec<Lineage> {
    let mut lineage: Vec<Lineage> = provenance
        .assignments()
        .iter()
        .map(|a| {
            let key = (a.sink_ts.as_millis(), format!("{:?}", a.sink_data));
            let sources: BTreeSet<SinkTuple> = a
                .source_records::<Reading>()
                .iter()
                .map(|r| (r.ts.as_millis(), format!("{:?}", r.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    lineage
}

// ---------------------------------------------------------------------------
// The pipeline under test, written once per API
// ---------------------------------------------------------------------------

/// The legacy reference: hand-built physical `Query`, one shard (plain operator).
fn legacy_np_plain(reports: &[(Timestamp, Reading)]) -> Vec<SinkTuple> {
    let mut q = Query::new(NoProvenance);
    let src = q.source("readings", VecSource::new(reports.to_vec()));
    let kept = q.filter("keep", src, keep);
    let scaled = q.map_one("scale", kept, scale);
    let sums = q.aggregate("sum", scaled, window_spec(), sum_key, sum_window);
    let alerts = q.filter("busy", sums, busy);
    let out = q.collecting_sink("sink", alerts);
    q.deploy().unwrap().wait().unwrap();
    sink_tuples(&out)
}

/// The legacy reference with the hand-built sharded entry point.
fn legacy_np_sharded(reports: &[(Timestamp, Reading)], shards: usize) -> Vec<SinkTuple> {
    let mut q = Query::new(NoProvenance);
    let src = q.source("readings", VecSource::new(reports.to_vec()));
    let kept = q.filter("keep", src, keep);
    let scaled = q.map_one("scale", kept, scale);
    let sums = q.sharded_aggregate(
        "sum",
        scaled,
        window_spec(),
        sum_key,
        sum_window,
        sum_key,
        Parallelism::instances(shards),
    );
    let alerts = q.filter("busy", sums, busy);
    let out = q.collecting_sink("sink", alerts);
    q.deploy().unwrap().wait().unwrap();
    sink_tuples(&out)
}

/// The same pipeline, written once on the logical builder; sharding and placement
/// arrive as annotations, fusion is a planner flag.
fn new_np(
    reports: &[(Timestamp, Reading)],
    shards: usize,
    fusion: bool,
    placements: Option<Vec<ShardPlacement<NoProvenance, Reading, Reading>>>,
) -> Vec<SinkTuple> {
    let plan = LogicalPlan::with_config(NoProvenance, PlannerConfig::default().with_fusion(fusion));
    let agg = plan
        .source("readings", VecSource::new(reports.to_vec()))
        .filter("keep", keep)
        .map_one("scale", scale)
        .aggregate("sum", window_spec(), sum_key, sum_window, sum_key);
    let agg = match placements {
        Some(placements) => agg.place(placements),
        None => agg.with(Parallelism::shards(shards)),
    };
    let out = agg.filter("busy", busy).collecting_sink("sink");
    plan.deploy().unwrap().wait().unwrap();
    sink_tuples(&out)
}

/// The legacy GeneaLog reference: plain aggregate, provenance unfolded in-process.
fn legacy_gl(reports: &[(Timestamp, Reading)]) -> (Vec<SinkTuple>, Vec<Lineage>) {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("readings", VecSource::new(reports.to_vec()));
    let kept = q.filter("keep", src, keep);
    let scaled = q.map_one("scale", kept, scale);
    let sums = q.aggregate("sum", scaled, window_spec(), sum_key, sum_window);
    let alerts = q.filter("busy", sums, busy);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", alerts);
    let sink = q.collecting_sink("sink", out);
    q.deploy().unwrap().wait().unwrap();
    (sink_tuples(&sink), lineage_of(&provenance))
}

/// The same GeneaLog pipeline on the logical builder.
fn new_gl(
    reports: &[(Timestamp, Reading)],
    shards: usize,
    fusion: bool,
) -> (Vec<SinkTuple>, Vec<Lineage>) {
    let plan = GlPlan::with_config(
        GeneaLog::new(),
        PlannerConfig::default().with_fusion(fusion),
    );
    let alerts = plan
        .source("readings", VecSource::new(reports.to_vec()))
        .filter("keep", keep)
        .map_one("scale", scale)
        .aggregate("sum", window_spec(), sum_key, sum_window, sum_key)
        .with(Parallelism::shards(shards))
        .filter("busy", busy);
    let (out, provenance) = logical_provenance_sink(alerts, "prov");
    let sink = out.collecting_sink("sink");
    plan.deploy().unwrap().wait().unwrap();
    (sink_tuples(&sink), lineage_of(&provenance))
}

/// The logical builder with every shard of the aggregate on its own remote SPE
/// instance; lineage stitched across the REMOTE boundary by the MU.
fn new_gl_remote(
    reports: &[(Timestamp, Reading)],
    instances: usize,
) -> (Vec<SinkTuple>, Vec<Lineage>) {
    let group = remote_shard_group_gl::<Reading, Reading, _>(
        "sum",
        instances,
        1, // remote instances use GeneaLog id namespaces 1..=instances
        NetworkConfig::unlimited(),
        QueryConfig::default(),
        move |rq, _i, input| rq.aggregate("sum", input, window_spec(), sum_key, sum_window),
    )
    .unwrap();

    let plan = GlPlan::new(GeneaLog::for_instance(0));
    let sums = plan
        .source("readings", VecSource::new(reports.to_vec()))
        .aggregate("sum", window_spec(), sum_key, sum_window, sum_key)
        .place(group.placements);
    let (out, provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
        sums,
        "prov",
        group.provenance_links,
        Duration::from_hours(24),
    );
    let sink = out.collecting_sink("sink");
    plan.deploy().unwrap().wait().unwrap();
    group.group.wait().unwrap();

    let tuples = sink_tuples(&sink);
    let mut lineage: Vec<Lineage> = provenance
        .records()
        .iter()
        .map(|r| {
            let key = (r.sink_ts.as_millis(), format!("{:?}", r.sink_data));
            let sources: BTreeSet<SinkTuple> = r
                .sources
                .iter()
                .map(|s| (s.ts.as_millis(), format!("{:?}", s.data)))
                .collect();
            (key, sources)
        })
        .collect();
    lineage.sort();
    (tuples, lineage)
}

/// The GeneaLog reference for the remote pin: the bare aggregate pipeline (no
/// stateless stages), plain single-instance operator.
fn legacy_gl_bare(reports: &[(Timestamp, Reading)]) -> (Vec<SinkTuple>, Vec<Lineage>) {
    let mut q = GlQuery::new(GeneaLog::new());
    let src = q.source("readings", VecSource::new(reports.to_vec()));
    let sums = q.aggregate("sum", src, window_spec(), sum_key, sum_window);
    let (out, provenance) = attach_provenance_sink(&mut q, "prov", sums);
    let sink = q.collecting_sink("sink", out);
    q.deploy().unwrap().wait().unwrap();
    (sink_tuples(&sink), lineage_of(&provenance))
}

/// Strategy: a timestamp-ordered stream of keyed readings with random keys, values
/// and (possibly repeating) timestamp gaps.
fn keyed_readings() -> impl Strategy<Value = Vec<(Timestamp, Reading)>> {
    proptest::collection::vec((0u32..8, 0u64..200, 0u64..5), 1..60).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(key, value, gap)| {
                ts += gap; // non-decreasing; repeated timestamps exercise tie-breaking
                (Timestamp::from_secs(ts), (key, value as i64 - 100))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// NP: the builder plan equals the legacy plans byte for byte, for shard counts
    /// 1/2/4 with fusion on and off (the full annotation matrix against both the
    /// plain and the deprecated sharded legacy entry points).
    #[test]
    fn np_builder_equals_legacy_across_shards_and_fusion(reports in keyed_readings()) {
        let reference = legacy_np_plain(&reports);
        for shards in [1usize, 2, 4] {
            let legacy = legacy_np_sharded(&reports, shards);
            prop_assert_eq!(&legacy, &reference);
            for fusion in [true, false] {
                let lowered = new_np(&reports, shards, fusion, None);
                prop_assert_eq!(&lowered, &reference);
            }
        }
    }

    /// GL: identical sink bytes *and* identical per-sink-tuple contribution sets
    /// between the builder plan and the legacy plan, across shard counts and fusion.
    #[test]
    fn gl_builder_equals_legacy_on_bytes_and_lineage(reports in keyed_readings()) {
        let (ref_tuples, ref_lineage) = legacy_gl(&reports);
        for shards in [1usize, 2, 4] {
            let fusion = shards != 2; // cover both flags across the sweep
            let (tuples, lineage) = new_gl(&reports, shards, fusion);
            prop_assert_eq!(&tuples, &ref_tuples);
            prop_assert_eq!(&lineage, &ref_lineage);
        }
    }

    /// GL with every shard remote: the REMOTE boundary is invisible — same sink
    /// bytes, same stitched contribution sets as the local single-instance plan.
    #[test]
    fn gl_builder_remote_placements_equal_local(reports in keyed_readings()) {
        let (ref_tuples, ref_lineage) = legacy_gl_bare(&reports);
        let (tuples, lineage) = new_gl_remote(&reports, 3);
        prop_assert_eq!(tuples, ref_tuples);
        prop_assert_eq!(lineage, ref_lineage);
    }
}

/// NP remote and mixed placements through the `.place(..)` annotation equal the
/// all-local lowering for 1, 2 and 4 shards.
#[test]
fn np_remote_and_mixed_placements_equal_local() {
    let reports: Vec<(Timestamp, Reading)> = (0..160u64)
        .map(|i| (Timestamp::from_secs(i / 4), ((i % 7) as Key, i as i64)))
        .collect();
    let reference = legacy_np_plain(&reports);

    for instances in [1usize, 2, 4] {
        let (placements, group) = remote_shard_group::<NoProvenance, Reading, Reading, _, _>(
            "sum",
            instances,
            NetworkConfig::unlimited(),
            QueryConfig::default(),
            |_| NoProvenance,
            move |rq, _i, input| rq.aggregate("sum", input, window_spec(), sum_key, sum_window),
        )
        .unwrap();
        let remote = new_np(&reports, instances, true, Some(placements));
        group.wait().unwrap();
        assert_eq!(
            remote, reference,
            "{instances} remote shards must equal the plain legacy plan"
        );
    }

    // Shard 1 of 3 remote, 0 and 2 local — mixed groups lower identically too.
    let (mut remote_placements, group) =
        remote_shard_group::<NoProvenance, Reading, Reading, _, _>(
            "sum",
            1,
            NetworkConfig::unlimited(),
            QueryConfig::default(),
            |_| NoProvenance,
            move |rq, _i, input| rq.aggregate("sum", input, window_spec(), sum_key, sum_window),
        )
        .unwrap();
    let placements = vec![
        ShardPlacement::Local,
        remote_placements.pop().expect("one remote placement"),
        ShardPlacement::Local,
    ];
    let mixed = new_np(&reports, 3, true, Some(placements));
    group.wait().unwrap();
    assert_eq!(
        mixed, reference,
        "mixed placements must equal the plain plan"
    );
    assert!(!reference.is_empty());
}

/// Fusion is on by default and per-stage counters survive in reports: the
/// pre-exchange chain and the per-shard chains report their original operators
/// through `OperatorReport::stages`.
#[test]
fn default_fusion_keeps_per_stage_counters() {
    let reports: Vec<(Timestamp, Reading)> = (0..120u64)
        .map(|i| (Timestamp::from_secs(i / 3), ((i % 5) as Key, i as i64)))
        .collect();
    let plan = LogicalPlan::new(NoProvenance); // fusion defaults ON
    let _out = plan
        .source("readings", VecSource::new(reports))
        .filter("keep", keep)
        .map_one("scale", scale)
        .aggregate("sum", window_spec(), sum_key, sum_window, sum_key)
        .with(Parallelism::shards(4))
        .filter("busy", busy)
        .map_one("final", scale)
        .keyed(sum_key)
        .collecting_sink("sink");
    let q = plan.lower().unwrap();
    let report = q.deploy().unwrap().wait().unwrap();

    // Pre-exchange chain: keep+scale fused into one thread, stages preserved.
    let chain = report.operator("keep+scale").expect("pre-exchange chain");
    assert_eq!(chain.kind, NodeKind::Fused);
    assert_eq!(chain.stages.len(), 2);
    let keep_stage = report.fused_stage("keep").expect("keep stage");
    assert_eq!(keep_stage.tuples_in, 120);
    assert!(keep_stage.tuples_out < 120);
    assert_eq!(
        report.fused_stage("scale").unwrap().tuples_in,
        keep_stage.tuples_out
    );

    // Post-aggregate shard region: busy+final fused per shard, one grouped report.
    let shard_chain = report.operator("busy+final").expect("shard-region chain");
    assert_eq!(shard_chain.kind, NodeKind::Fused);
    assert_eq!(shard_chain.instances, 4);
    assert_eq!(shard_chain.stages.len(), 2);
    assert_eq!(
        report.fused_stage("busy").unwrap().tuples_out,
        report.fused_stage("final").unwrap().tuples_in
    );
}

/// The builder's shard channels share the per-edge element budget exactly like the
/// legacy physical builder's.
#[test]
fn lowered_shard_channels_share_the_edge_budget() {
    let config = PlannerConfig::default(); // 1024 elements, batch 32
    for n in [1usize, 2, 4] {
        let plan = LogicalPlan::with_config(NoProvenance, config.clone());
        let _out = plan
            .source(
                "src",
                VecSource::with_period((0..8u32).map(|i| (i, 0i64)).collect(), 1_000),
            )
            .aggregate("agg", window_spec(), sum_key, sum_window, sum_key)
            .place(ShardPlacement::<NoProvenance, Reading, Reading>::all_local(
                n,
            ))
            .collecting_sink("sink");
        let q = plan.lower().unwrap();
        let kinds: Vec<NodeKind> = q.node_summaries().iter().map(|(_, k)| *k).collect();
        let mut exchange_total = 0usize;
        let mut fanin_total = 0usize;
        for ((from, to), budget) in q.edges().iter().zip(q.edge_budgets()) {
            if kinds[*from] == NodeKind::Partition {
                exchange_total += budget;
            }
            if kinds[*to] == NodeKind::ShardMerge {
                fanin_total += budget;
            }
        }
        assert_eq!(exchange_total, config.channel_capacity);
        assert_eq!(fanin_total, config.channel_capacity);
    }
}

/// Both layers render to DOT: the logical view shows the declared operators with
/// their annotations; the lowered view shows what the planner inserted.
#[test]
fn logical_and_physical_dot_show_the_lowering() {
    let plan = LogicalPlan::new(NoProvenance);
    let _out = plan
        .source(
            "src",
            VecSource::with_period((0..8u32).map(|i| (i, 0i64)).collect(), 1_000),
        )
        .filter("keep", keep)
        .map_one("scale", scale)
        .aggregate("sum", window_spec(), sum_key, sum_window, sum_key)
        .with(Parallelism::shards(4))
        .collecting_sink("sink");
    let logical_dot = plan.to_dot();
    assert!(logical_dot.contains("digraph logical"));
    assert!(logical_dot.contains("sum\\n(aggregate \u{d7}4)"));
    assert!(
        !logical_dot.contains("partition"),
        "no exchange in the logical view"
    );

    let q = plan.lower().unwrap();
    let physical_dot = q.to_dot();
    assert!(physical_dot.contains("sum.exchange\\n(partition \u{d7}4)"));
    assert!(physical_dot.contains("sum.merge\\n(shard-merge \u{d7}4)"));
    // The fused keep+scale chain renders as one box in the physical view.
    assert!(physical_dot.contains("keep \u{2192} scale"));
}
