//! The deploy-time plan analyzer, end to end over the real builder APIs:
//!
//! * one **seeded-defect plan per analysis pass**, each built through the public
//!   `LogicalPlan` surface (escape hatches included) and pinned to its stable
//!   diagnostic code — GL001/GL002 (channels), GL011/GL012 (barriers),
//!   GL021/GL022 (provenance), GL031/GL032 (resources);
//! * the **GL001 dual fire**: the analyzer's plan-time diagnostic and the
//!   runtime channel guard's `batch-budget-over-allocation` trace both fire for
//!   the same seeded plan;
//! * the **gating modes**: `Warn` (default) lowers and emits `plan-analysis`
//!   traces, `Deny` rejects error plans with [`SpeError::PlanRejected`], `Off`
//!   lowers silently;
//! * a **no-false-positives property**: randomly generated plans that lower and
//!   run to completion analyze with zero errors, across shard counts, explicit
//!   placement vs. parallelism hints, fusion on/off and checkpointing on/off
//!   (warnings are allowed — GL031 legitimately fires on small CI hosts);
//! * the **remote axis**: a plan spanning remote SPE instances analyzes clean,
//!   records its remote placement in the facts, then deploys and drains.

use proptest::prelude::*;

use genealog::prelude::*;
use genealog_analysis::Severity;
use genealog_distributed::deployment::{logical_shard_provenance_sink, remote_shard_group_gl};
use genealog_distributed::NetworkConfig;
use genealog_metrics::{CountingSubscriber, Tracer};
use genealog_spe::logical::{LogicalPlan, LogicalStream};
use genealog_spe::operator::aggregate::WindowView;
use genealog_spe::provenance::{MetaData, NoProvenance};
use genealog_spe::query::{NodeKind, QueryConfig, ShardPlacement};
use genealog_spe::{AnalysisMode, PlannerConfig, SpeError};

type Key = u32;
type Reading = (Key, i64);

fn window_spec() -> WindowSpec {
    WindowSpec::new(Duration::from_secs(8), Duration::from_secs(4)).unwrap()
}

fn keep(r: &Reading) -> bool {
    r.1 % 3 != 0
}

fn scale(r: &Reading) -> Reading {
    (r.0, r.1 * 2)
}

fn busy(o: &Reading) -> bool {
    o.1 % 5 != 0
}

fn sum_key(r: &Reading) -> Key {
    r.0
}

fn sum_window<M: MetaData>(w: &WindowView<'_, Key, Reading, M>) -> Reading {
    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
}

fn reports(n: u64) -> Vec<(Timestamp, Reading)> {
    (0..n)
        .map(|t| (Timestamp::from_secs(t * 3), ((t % 4) as Key, t as i64)))
        .collect()
}

// ---------------------------------------------------------------------------
// Channel pass: GL001 (plan-time + runtime dual fire) and GL002
// ---------------------------------------------------------------------------

/// Satellite pin: the runtime's one-shot `batch-budget-over-allocation` guard
/// was *promoted* into the analyzer, not replaced by it. One seeded plan, one
/// `analyze()` call, and both layers report the same over-allocation — the
/// analyzer as a GL001 diagnostic per edge, the channel guard as a trace event
/// when lowering allocates the bounded channels.
#[test]
fn gl001_fires_at_plan_time_and_the_runtime_guard_still_fires() {
    let guard = CountingSubscriber::new("batch-budget-over-allocation", "capacity=13,batch=77");
    Tracer::global().subscribe(guard.clone());

    let plan = LogicalPlan::with_config(
        NoProvenance,
        PlannerConfig::default()
            .with_channel_capacity(13)
            .with_batch_size(77)
            .with_fusion(false),
    );
    let _sink = plan
        .source("readings", VecSource::new(reports(8)))
        .filter("keep", keep)
        .collecting_sink("sink");

    let analyzed = plan.analyze().unwrap();
    let hits: Vec<_> = analyzed.report.with_code("GL001").collect();
    assert_eq!(hits.len(), 2, "one GL001 per over-allocated channel");
    assert!(hits.iter().any(|d| d.path == ["readings", "keep"]));
    assert!(hits.iter().any(|d| d.path == ["keep", "sink"]));
    assert!(hits[0].message.contains("77") && hits[0].message.contains("13"));
    assert_eq!(hits[0].severity, Severity::Warning);

    assert!(
        guard.hits() >= 1,
        "lowering allocates the real channels, so the runtime guard fires too"
    );
}

/// A bounded-channel cycle is impossible through the typed builder, but the
/// `raw` escape hatch can wire one through the extension API.
fn cyclic_plan(mode: AnalysisMode) -> LogicalPlan<NoProvenance> {
    let plan = LogicalPlan::with_config(NoProvenance, PlannerConfig::default().with_analysis(mode));
    let _sink = plan
        .source("pump", VecSource::new(reports(4)))
        .raw("loop", |q, input| {
            let a = q.add_node("loop-a", NodeKind::Custom("loop"));
            let b = q.add_node("loop-b", NodeKind::Custom("loop"));
            let _ = q.attach_input(input, a);
            let (_a_slot, a_out) = q.new_output_stream::<Reading>(a, "loop-a.out");
            let _ = q.attach_input(a_out, b);
            let (_b_slot, b_back) = q.new_output_stream::<Reading>(b, "loop-b.back");
            let _ = q.attach_input(b_back, a);
            let (_b_slot2, b_out) = q.new_output_stream::<Reading>(b, "loop-b.out");
            b_out
        })
        .collecting_sink("drain");
    plan
}

#[test]
fn gl002_names_a_representative_channel_cycle() {
    let analyzed = cyclic_plan(AnalysisMode::Warn).analyze().unwrap();
    let d = analyzed
        .report
        .with_code("GL002")
        .next()
        .expect("GL002 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.path.contains(&"loop-a".to_string()));
    assert!(d.path.contains(&"loop-b".to_string()));
    assert!(d.message.contains("deadlock"));
    assert!(analyzed.report.has_errors());
}

// ---------------------------------------------------------------------------
// Barrier pass: GL011 and GL012 (checkpointing configured)
// ---------------------------------------------------------------------------

#[test]
fn gl011_flags_the_aligned_fan_in_starved_by_an_opaque_operator() {
    let plan = LogicalPlan::with_config(
        NoProvenance,
        PlannerConfig::default()
            .with_checkpoints(CheckpointConfig::new(16, CheckpointStore::in_memory())),
    );
    let left = plan.source("left", VecSource::new(reports(8)));
    let right = plan
        .source("right", VecSource::new(reports(8)))
        .raw("opaque", |q, input| {
            let node = q.add_node("opaque", NodeKind::Custom("mystery"));
            let _ = q.attach_input(input, node);
            let (_slot, out) = q.new_output_stream::<Reading>(node, "opaque.out");
            out
        });
    let _sink = LogicalStream::union("both", vec![left, right]).collecting_sink("drain");

    let analyzed = plan.analyze().unwrap();
    let d = analyzed
        .report
        .with_code("GL011")
        .next()
        .expect("GL011 fires");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.path[0], "both", "the stalled fan-in leads the path");
    assert!(d.message.contains("blocked at `opaque`"));
    // The sink downstream of the stall is separately reported as state no
    // checkpoint will ever cover.
    assert!(analyzed.report.has_code("GL013"));
}

#[test]
fn gl012_fires_when_checkpointing_has_no_barrier_origin() {
    let plan = LogicalPlan::with_config(
        NoProvenance,
        PlannerConfig::default()
            .with_checkpoints(CheckpointConfig::new(16, CheckpointStore::in_memory())),
    );
    // `extend_source` roots the plan in a custom node that is neither a Source
    // (barrier injector) nor a root Receive (barrier importer).
    let _sink = plan
        .extend_source("feed", "replay", |q| {
            let node = q.add_node("feed", NodeKind::Custom("replay"));
            let (_slot, out) = q.new_output_stream::<Reading>(node, "feed.out");
            out
        })
        .collecting_sink("drain");

    let analyzed = plan.analyze().unwrap();
    let d = analyzed
        .report
        .with_code("GL012")
        .next()
        .expect("GL012 fires");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("no operator injects or"));
}

// ---------------------------------------------------------------------------
// Provenance pass: GL021 and GL022 (GL mode only)
// ---------------------------------------------------------------------------

#[test]
fn gl021_flags_an_opaque_operator_on_the_path_to_a_gl_sink() {
    let plan = GlPlan::new(GeneaLog::new());
    let out = plan
        .source("readings", VecSource::new(reports(8)))
        .raw("opaque", |q, input| {
            let node = q.add_node("opaque", NodeKind::Custom("mystery"));
            let _ = q.attach_input(input, node);
            let (_slot, out) = q.new_output_stream::<Reading>(node, "opaque.out");
            out
        });
    let (stream, _provenance) = logical_provenance_sink(out, "prov");
    let _sink = stream.collecting_sink("sink");

    let analyzed = plan.analyze().unwrap();
    let d = analyzed
        .report
        .with_code("GL021")
        .next()
        .expect("GL021 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.path, vec!["opaque".to_string()]);
    assert!(d.message.contains("meta chain"));
    // The collector is attached, so GL022 stays quiet.
    assert!(!analyzed.report.has_code("GL022"));
}

#[test]
fn gl022_flags_a_gl_plan_without_a_provenance_collector() {
    let plan = GlPlan::new(GeneaLog::new());
    let _sink = plan
        .source("readings", VecSource::new(reports(8)))
        .filter("keep", keep)
        .collecting_sink("sink");

    let analyzed = plan.analyze().unwrap();
    let d = analyzed
        .report
        .with_code("GL022")
        .next()
        .expect("GL022 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.path, vec!["sink".to_string()]);
    assert!(d.message.contains("logical_provenance_sink"));
    assert!(!analyzed.report.has_code("GL021"), "no opaque node here");
}

// ---------------------------------------------------------------------------
// Resource pass: GL031 and GL032
// ---------------------------------------------------------------------------

/// The facts snapshot is plain data, so the host-dependent CPU check is pinned
/// by editing `host_cpus` rather than by assuming anything about the CI host.
#[test]
fn gl031_compares_operator_threads_against_host_cpus() {
    let plan = LogicalPlan::with_config(NoProvenance, PlannerConfig::default());
    let _sink = plan
        .source("readings", VecSource::new(reports(16)))
        .aggregate("sum", window_spec(), sum_key, sum_window, sum_key)
        .collecting_sink("sink");
    let analyzed = plan.analyze().unwrap();

    let mut facts = analyzed.facts;
    assert!(facts.threads >= 2, "source/aggregate/sink cannot fuse");
    facts.host_cpus = 1;
    let report = genealog_analysis::analyze(&facts);
    let d = report.with_code("GL031").next().expect("GL031 fires");
    assert_eq!(d.severity, Severity::Warning);

    facts.host_cpus = facts.threads;
    let report = genealog_analysis::analyze(&facts);
    assert!(
        !report.has_code("GL031"),
        "enough CPUs silences the warning"
    );
}

#[test]
fn gl032_flags_a_parallelism_hint_overridden_by_an_explicit_placement() {
    let plan = LogicalPlan::with_config(NoProvenance, PlannerConfig::default());
    let placements: Vec<ShardPlacement<NoProvenance, Reading, Reading>> =
        ShardPlacement::all_local(2);
    let _sink = plan
        .source("readings", VecSource::new(reports(16)))
        .aggregate("sum", window_spec(), sum_key, sum_window, sum_key)
        .with(Parallelism::shards(4))
        .place(placements)
        .collecting_sink("sink");

    let analyzed = plan.analyze().unwrap();
    let d = analyzed
        .report
        .with_code("GL032")
        .next()
        .expect("GL032 fires");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.path, vec!["sum".to_string()]);
    assert!(d.message.contains('4') && d.message.contains('2'));
    assert!(
        !analyzed.report.has_errors(),
        "a contradiction is only a warning"
    );
}

// ---------------------------------------------------------------------------
// Gating: Deny rejects, Warn lowers + traces, Off lowers silently
// ---------------------------------------------------------------------------

#[test]
fn deny_mode_rejects_error_plans_and_off_mode_lowers_them() {
    match cyclic_plan(AnalysisMode::Deny).lower() {
        Err(SpeError::PlanRejected { report }) => {
            assert!(
                report.contains("GL002"),
                "the report names the cycle: {report}"
            );
            assert!(report.contains("error"));
        }
        other => panic!("Deny mode must reject the cyclic plan, got {other:?}"),
    }
    // Warn (the default) and Off both hand back the lowered query; the defect
    // is the user's to keep.
    assert!(cyclic_plan(AnalysisMode::Warn).lower().is_ok());
    assert!(cyclic_plan(AnalysisMode::Off).lower().is_ok());
}

#[test]
fn warn_mode_lowering_emits_plan_analysis_traces() {
    let trace = CountingSubscriber::new("plan-analysis", "GL001:feed->drain");
    Tracer::global().subscribe(trace.clone());

    let plan = LogicalPlan::with_config(
        NoProvenance,
        PlannerConfig::default()
            .with_channel_capacity(9)
            .with_batch_size(40),
    );
    let _sink = plan
        .source("feed", VecSource::new(reports(4)))
        .collecting_sink("drain");

    let query = plan.lower().expect("Warn mode lowers warning-only plans");
    drop(query);
    assert_eq!(trace.hits(), 1, "each finding is traced once per process");
}

// ---------------------------------------------------------------------------
// Remote axis: a spanning plan analyzes clean, then deploys and drains
// ---------------------------------------------------------------------------

#[test]
fn remote_placements_analyze_clean_and_the_facts_record_them() {
    let shards = remote_shard_group_gl::<Reading, Reading, _>(
        "sum",
        2,
        1,
        NetworkConfig::unlimited(),
        QueryConfig::default(),
        move |rq, _i, input| rq.aggregate("sum", input, window_spec(), sum_key, sum_window),
    )
    .unwrap();
    let group = shards.group;

    let plan = GlPlan::new(GeneaLog::for_instance(0));
    let sums = plan
        .source("readings", VecSource::new(reports(12)))
        .aggregate("sum", window_spec(), sum_key, sum_window, sum_key)
        .place(shards.placements);
    let (out, _provenance) = logical_shard_provenance_sink::<Reading, Reading, _>(
        sums,
        "prov",
        shards.provenance_links,
        Duration::from_hours(24),
    );
    let sink = out.collecting_sink("sink");

    let analyzed = plan.analyze().unwrap();
    assert!(
        !analyzed.report.has_errors(),
        "the spanning plan analyzes clean:\n{}",
        analyzed.report.render()
    );
    let logical = analyzed.facts.logical.as_ref().expect("logical facts");
    let sum = logical.nodes.iter().find(|n| n.name == "sum").unwrap();
    assert_eq!(sum.placement_total, Some(2));
    assert_eq!(sum.placement_remote, 2, "both shards are placed remotely");

    // The analyzed query is the deployable one: run it and drain the remotes.
    analyzed.query.deploy().unwrap().wait().unwrap();
    group.wait().unwrap();
    assert!(!sink.is_empty(), "the spanning query produced output");
}

// ---------------------------------------------------------------------------
// No false positives: clean random plans analyze with zero errors
// ---------------------------------------------------------------------------

/// Strategy: a timestamp-ordered stream of keyed readings (same shape as the
/// logical-plan equivalence suite).
fn keyed_readings() -> impl Strategy<Value = Vec<(Timestamp, Reading)>> {
    proptest::collection::vec((0u32..8, 0u64..200, 0u64..5), 1..40).prop_map(|steps| {
        let mut ts = 0u64;
        steps
            .into_iter()
            .map(|(key, value, gap)| {
                ts += gap;
                (Timestamp::from_secs(ts), (key, value as i64 - 100))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any plan the typed builder produces that lowers and runs to completion
    /// must analyze with **zero errors** — warnings are legitimate (GL031 fires
    /// on small hosts), errors are analyzer false positives. The axes are the
    /// planner's: shard count, `.place(..)` vs `.with(..)`, fusion on/off,
    /// checkpointing on/off.
    #[test]
    fn clean_random_plans_analyze_with_zero_errors(
        reports in keyed_readings(),
        shards in 1usize..4,
        fusion in any::<bool>(),
        placed in any::<bool>(),
        checkpointed in any::<bool>(),
    ) {
        let mut config = PlannerConfig::default().with_fusion(fusion);
        if checkpointed {
            config = config
                .with_checkpoints(CheckpointConfig::new(16, CheckpointStore::in_memory()));
        }
        let plan = GlPlan::with_config(GeneaLog::new(), config);
        let agg = plan
            .source("readings", VecSource::new(reports))
            .filter("keep", keep)
            .map_one("scale", scale)
            .aggregate("sum", window_spec(), sum_key, sum_window, sum_key);
        let agg = if placed {
            let placements: Vec<ShardPlacement<GeneaLog, Reading, Reading>> =
                ShardPlacement::all_local(shards);
            agg.place(placements)
        } else {
            agg.with(Parallelism::shards(shards))
        };
        let alerts = agg.filter("busy", busy);
        let (out, _provenance) = logical_provenance_sink(alerts, "prov");
        let sink = out.collecting_sink("sink");

        let analyzed = plan.analyze().unwrap();
        prop_assert!(
            !analyzed.report.has_errors(),
            "false positive (shards={}, fusion={}, placed={}, checkpointed={}):\n{}",
            shards, fusion, placed, checkpointed, analyzed.report.render()
        );
        // Prove the antecedent: the very query the analyzer inspected runs to
        // completion.
        analyzed.query.deploy().unwrap().wait().unwrap();
        let _ = sink.len();
    }
}
