//! Workspace façade crate for the GeneaLog reproduction.
//!
//! The actual functionality lives in the workspace crates; this package hosts
//! the cross-crate integration tests (`tests/`), runnable examples
//! (`examples/`), the [`plans`] suite the `spe-lint` binary analyzes, and
//! re-exports the member crates for convenience.

pub use genealog;
pub use genealog_analysis;
pub use genealog_baseline;
pub use genealog_distributed;
pub use genealog_spe;
pub use genealog_workloads;

pub mod plans {
    //! The example-mirror plan suite for `spe-lint plans`: every runnable
    //! example's query, declared the same way the example declares it, lowered
    //! and analyzed without being deployed.
    //!
    //! The suite keeps placements local — remote shard groups spawn live SPE
    //! instances that would block a lint run (the remote axis is exercised by
    //! `tests/plan_analysis.rs` instead, which deploys and drains them).

    use genealog::prelude::*;
    use genealog_analysis::{Diagnostics, PlanFacts};
    use genealog_workloads::linear_road::{LinearRoadConfig, LinearRoadGenerator};
    use genealog_workloads::queries::{build_q1, build_q3};
    use genealog_workloads::smart_grid::{SmartGridConfig, SmartGridGenerator};

    /// The analyzer verdict of one example plan.
    #[derive(Debug)]
    pub struct AnalyzedPlan {
        /// Name of the mirrored example.
        pub name: &'static str,
        /// The analyzer's findings for the lowered plan.
        pub report: Diagnostics,
        /// The facts snapshot the analyzer ran over.
        pub facts: PlanFacts,
    }

    fn analyzed(name: &'static str, plan: GlPlan) -> AnalyzedPlan {
        let analyzed = plan.analyze().expect("example plan lowers");
        AnalyzedPlan {
            name,
            report: analyzed.report,
            facts: analyzed.facts,
        }
    }

    /// `examples/quickstart.rs`: hot-reading alerts with a provenance sink.
    pub fn quickstart() -> AnalyzedPlan {
        let readings: Vec<(u32, i64)> = vec![(1, 72), (2, 95), (1, 91), (1, 93), (2, 96)];
        let plan = GlPlan::new(GeneaLog::new());
        let alerts = plan
            .source("sensors", VecSource::with_period(readings, 30_000))
            .filter("hot", |(_, temp): &(u32, i64)| *temp > 90)
            .aggregate(
                "hot-count",
                WindowSpec::new(Duration::from_secs(120), Duration::from_secs(30))
                    .expect("valid window"),
                |(sensor, _): &(u32, i64)| *sensor,
                |window: &WindowView<'_, u32, (u32, i64), GlMeta>| (*window.key, window.len()),
                |(sensor, _): &(u32, usize)| *sensor,
            )
            .filter("alerts", |(_, n): &(u32, usize)| *n >= 3);
        let (alert_stream, _provenance) = logical_provenance_sink(alerts, "provenance");
        let _sink = alert_stream.collecting_sink("alert-sink");
        analyzed("quickstart", plan)
    }

    /// `examples/parallel_aggregate.rs`: a 4-shard keyed aggregate with a
    /// per-shard filter and a provenance sink.
    pub fn parallel_aggregate() -> AnalyzedPlan {
        let readings: Vec<(Timestamp, (u32, i64))> = (0..64u64)
            .map(|i| (Timestamp::from_secs(i * 1_800), ((i % 16) as u32, i as i64)))
            .collect();
        let plan = GlPlan::new(GeneaLog::new());
        let spikes = plan
            .source("meters", VecSource::new(readings))
            .aggregate(
                "load",
                WindowSpec::tumbling(Duration::from_hours(4)).expect("valid window"),
                |r: &(u32, i64)| r.0,
                |w: &WindowView<'_, u32, (u32, i64), GlMeta>| {
                    (*w.key, w.payloads().map(|p| p.1).sum::<i64>())
                },
                |o: &(u32, i64)| o.0,
            )
            .with(Parallelism::shards(4))
            .filter("spike", |(_, total): &(u32, i64)| *total > 200);
        let (out, _provenance) = logical_provenance_sink(spikes, "prov");
        let _sink = out.collecting_sink("alerts");
        analyzed("parallel_aggregate", plan)
    }

    /// `examples/smart_grid_monitoring.rs` (Q3): the blackout detector, spliced
    /// in through the `raw` escape hatch.
    pub fn smart_grid_q3() -> AnalyzedPlan {
        let config = SmartGridConfig {
            meters: 10,
            days: 1,
            ..SmartGridConfig::default()
        };
        let plan = GlPlan::new(GeneaLog::new());
        let alerts = plan
            .source("smart-grid", SmartGridGenerator::new(config))
            .raw("q3", build_q3);
        let (stream, _provenance) = logical_provenance_sink(alerts, "q3-provenance");
        stream.discard();
        analyzed("smart_grid_q3", plan)
    }

    /// `examples/linear_road_accidents.rs` (Q1): the broken-down-vehicle
    /// detector, spliced in through the `raw` escape hatch.
    pub fn linear_road_q1() -> AnalyzedPlan {
        let config = LinearRoadConfig {
            cars: 12,
            rounds: 8,
            ..LinearRoadConfig::default()
        };
        let plan = GlPlan::new(GeneaLog::new());
        let alerts = plan
            .source("linear-road", LinearRoadGenerator::new(config))
            .raw("q1", build_q1);
        let (stream, _provenance) = logical_provenance_sink(alerts, "q1-provenance");
        stream.discard();
        analyzed("linear_road_q1", plan)
    }

    /// `examples/observability.rs`: the stopped-car query, declared on the
    /// physical [`GlQuery`] API (the analyzer runs on [`Query::plan_facts`]
    /// directly — no logical layer involved).
    ///
    /// [`Query::plan_facts`]: genealog_spe::Query::plan_facts
    pub fn observability() -> AnalyzedPlan {
        type Report = (u32, u32);
        let reports: Vec<Report> = vec![(7, 0), (7, 0), (7, 0), (9, 0), (7, 0), (8, 31)];
        let mut q = GlQuery::new(GeneaLog::new());
        let src = q.source("reports", VecSource::with_period(reports, 30_000));
        let stopped = q.filter("stopped", src, |r: &Report| r.1 == 0);
        let counts = q.aggregate(
            "per-car",
            stopped,
            WindowSpec::tumbling(Duration::from_secs(150)).expect("valid window"),
            |r: &Report| r.0,
            |w| (*w.key, w.len()),
        );
        let alerts = q.filter("alerts", counts, |c: &(u32, usize)| c.1 >= 4);
        let (out, _provenance) = attach_provenance_sink(&mut q, "prov", alerts);
        let _sink = q.collecting_sink("alert-sink", out);
        let facts = q.plan_facts();
        let report = genealog_analysis::analyze(&facts);
        AnalyzedPlan {
            name: "observability",
            report,
            facts,
        }
    }

    /// The fault-injection shape: a checkpointed plan whose barriers must reach
    /// the stateful aggregate (exercises the barrier-reachability pass over a
    /// realistic plan, not just the seeded-defect tests).
    pub fn checkpointed_aggregate() -> AnalyzedPlan {
        let store = CheckpointStore::in_memory();
        let plan = GlPlan::with_config(
            GeneaLog::new(),
            PlannerConfig::default().with_checkpoints(CheckpointConfig::new(8, store)),
        );
        let counts = plan
            .source(
                "readings",
                VecSource::with_period((0..64u32).map(|i| (i % 4, i as i64)).collect(), 1_000),
            )
            .aggregate(
                "count",
                WindowSpec::tumbling(Duration::from_secs(8)).expect("valid window"),
                |r: &(u32, i64)| r.0,
                |w: &WindowView<'_, u32, (u32, i64), GlMeta>| (*w.key, w.len() as i64),
                |o: &(u32, i64)| o.0,
            );
        let (out, _provenance) = logical_provenance_sink(counts, "prov");
        let _sink = out.collecting_sink("sink");
        analyzed("checkpointed_aggregate", plan)
    }

    /// Analyzes every plan of the suite.
    pub fn analyze_all() -> Vec<AnalyzedPlan> {
        vec![
            quickstart(),
            parallel_aggregate(),
            smart_grid_q3(),
            linear_road_q1(),
            observability(),
            checkpointed_aggregate(),
        ]
    }
}
