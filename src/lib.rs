//! Workspace façade crate for the GeneaLog reproduction.
//!
//! The actual functionality lives in the workspace crates; this package hosts
//! the cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`) and re-exports the member crates for convenience.

pub use genealog;
pub use genealog_baseline;
pub use genealog_distributed;
pub use genealog_spe;
pub use genealog_workloads;
