//! `spe-node`: the worker process of a real (multi-process) GeneaLog
//! deployment.
//!
//! A node binds a TCP listener and serves shard deployments: each connection
//! starts with one serialised `NodeDeployment` frame, is acknowledged, and then
//! becomes the multiplexed data/provenance/metrics link for every shard the
//! node hosts (see `genealog_distributed::node`). The origin side is
//! `connect_gl_node_group`, which returns the same shard-group handle the
//! in-process builders produce.
//!
//! ```text
//! spe-node --listen ADDR [--control ADDR] [--once] [--ready-file PATH]
//!          [--state-dir PATH]
//! ```
//!
//! * `--listen ADDR` — deployment listener address (e.g. `127.0.0.1:7401`,
//!   port `0` for ephemeral). Required.
//! * `--control ADDR` — also serve the node's control endpoint (`/metrics`,
//!   `/healthz`, `/store`) there; the hosted shards' registries are mirrored
//!   into it while they run.
//! * `--once` — serve exactly one deployment connection, then exit. Without
//!   it the node accepts deployments forever.
//! * `--ready-file PATH` — after binding, write the resolved listener address
//!   (line 1) and control address (line 2, empty when `--control` is absent)
//!   to `PATH`. Lets scripts and CI wait for startup without racing the bind.
//!   A leftover file from a crashed predecessor is detected and overwritten.
//! * `--state-dir PATH` — root directory for durable checkpoint stores. Each
//!   checkpointed deployment group gets a log-structured store under
//!   `PATH/<group>`; a node killed mid-epoch and restarted with the same
//!   `--state-dir` recovers its shard state from its own disk.
//!
//! On SIGTERM/SIGINT the node flushes every open store manifest (marking a
//! clean shutdown), removes its ready file and exits 0. Exit code 0 on a
//! clean `--once` run, 1 on argument or socket errors.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use genealog_control::ControlPlane;
use genealog_distributed::{run_node_with_state, NetworkConfig, NodeStores};
use genealog_metrics::MetricsRegistry;

/// Minimal libc-free POSIX signal binding: `signal(2)` with a plain handler.
/// The handler only flips an atomic; all real work (flushing store manifests,
/// removing the ready file) happens on a watcher thread in safe code.
mod sig {
    use super::AtomicBool;
    use std::sync::atomic::Ordering;

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    #[allow(unsafe_code)]
    pub fn install(signum: i32) {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(signum, on_signal);
        }
    }
}

struct Args {
    listen: String,
    control: Option<String>,
    once: bool,
    ready_file: Option<String>,
    state_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut listen = None;
    let mut control = None;
    let mut once = false;
    let mut ready_file = None;
    let mut state_dir = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(args.next().ok_or("--listen needs an address")?),
            "--control" => control = Some(args.next().ok_or("--control needs an address")?),
            "--once" => once = true,
            "--ready-file" => {
                ready_file = Some(args.next().ok_or("--ready-file needs a path")?);
            }
            "--state-dir" => {
                state_dir = Some(PathBuf::from(
                    args.next().ok_or("--state-dir needs a path")?,
                ));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        listen: listen.ok_or("--listen is required")?,
        control,
        once,
        ready_file,
        state_dir,
    })
}

fn run(args: &Args) -> Result<(), String> {
    let listener = TcpListener::bind(&args.listen)
        .map_err(|err| format!("cannot bind deployment listener on {}: {err}", args.listen))?;
    let listen_addr = listener
        .local_addr()
        .map_err(|err| format!("listener has no local address: {err}"))?;
    println!("spe-node: deployments on {listen_addr}");

    let stores = NodeStores::new();
    if let Some(dir) = &args.state_dir {
        std::fs::create_dir_all(dir)
            .map_err(|err| format!("cannot create state dir {}: {err}", dir.display()))?;
        println!("spe-node: durable state under {}", dir.display());
    }

    let registry = MetricsRegistry::new();
    let control = match &args.control {
        Some(addr) => {
            let status_stores = stores.clone();
            let server = ControlPlane::new(registry.clone())
                .with_store_status(move || status_stores.status_json())
                .serve_on(addr)
                .map_err(|err| format!("cannot serve control endpoint on {addr}: {err}"))?;
            println!("spe-node: control endpoint on {}", server.url(""));
            Some(server)
        }
        None => None,
    };

    if let Some(path) = &args.ready_file {
        if std::path::Path::new(path).exists() {
            println!(
                "spe-node: stale ready file {path} (unclean predecessor shutdown?), overwriting"
            );
        }
        let control_line = control
            .as_ref()
            .map_or(String::new(), |s| s.addr().to_string());
        std::fs::write(path, format!("{listen_addr}\n{control_line}\n"))
            .map_err(|err| format!("cannot write ready file {path}: {err}"))?;
    }

    // SIGTERM/SIGINT: a watcher thread flushes store manifests and removes the
    // ready file, so a supervised `kill` leaves a clean-shutdown marker behind
    // while `kill -9` (the crash the recovery tests exercise) leaves none.
    sig::install(sig::SIGTERM);
    sig::install(sig::SIGINT);
    {
        let stores = stores.clone();
        let ready_file = args.ready_file.clone();
        std::thread::spawn(move || loop {
            if sig::REQUESTED.load(Ordering::SeqCst) {
                let flushed = stores.flush_all();
                println!("spe-node: shutdown signal, flushed {flushed} store(s)");
                if let Some(path) = &ready_file {
                    let _ = std::fs::remove_file(path);
                }
                std::process::exit(0);
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }

    let max = args.once.then_some(1);
    let result = run_node_with_state(
        listener,
        &registry,
        NetworkConfig::unlimited(),
        max,
        args.state_dir.as_deref(),
        &stores,
    )
    .map_err(|err| format!("deployment listener failed: {err}"));
    stores.flush_all();
    if let Some(path) = &args.ready_file {
        let _ = std::fs::remove_file(path);
    }
    if let Some(server) = control {
        server.shutdown();
    }
    result
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(reason) => {
            println!("spe-node: {reason}");
            println!(
                "usage: spe-node --listen ADDR [--control ADDR] [--once] [--ready-file PATH] [--state-dir PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(reason) => {
            println!("spe-node failed: {reason}");
            ExitCode::FAILURE
        }
    }
}
