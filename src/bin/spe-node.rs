//! `spe-node`: the worker process of a real (multi-process) GeneaLog
//! deployment.
//!
//! A node binds a TCP listener and serves shard deployments: each connection
//! starts with one serialised `NodeDeployment` frame, is acknowledged, and then
//! becomes the multiplexed data/provenance/metrics link for every shard the
//! node hosts (see `genealog_distributed::node`). The origin side is
//! `connect_gl_node_group`, which returns the same shard-group handle the
//! in-process builders produce.
//!
//! ```text
//! spe-node --listen ADDR [--control ADDR] [--once] [--ready-file PATH]
//! ```
//!
//! * `--listen ADDR` — deployment listener address (e.g. `127.0.0.1:7401`,
//!   port `0` for ephemeral). Required.
//! * `--control ADDR` — also serve the node's control endpoint (`/metrics`,
//!   `/healthz`) there; the hosted shards' registries are mirrored into it
//!   while they run.
//! * `--once` — serve exactly one deployment connection, then exit. Without
//!   it the node accepts deployments forever.
//! * `--ready-file PATH` — after binding, write the resolved listener address
//!   (line 1) and control address (line 2, empty when `--control` is absent)
//!   to `PATH`. Lets scripts and CI wait for startup without racing the bind.
//!
//! Exit code 0 on a clean `--once` run, 1 on argument or socket errors.

use std::net::TcpListener;
use std::process::ExitCode;

use genealog_control::ControlPlane;
use genealog_distributed::{run_node, NetworkConfig};
use genealog_metrics::MetricsRegistry;

struct Args {
    listen: String,
    control: Option<String>,
    once: bool,
    ready_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut listen = None;
    let mut control = None;
    let mut once = false;
    let mut ready_file = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(args.next().ok_or("--listen needs an address")?),
            "--control" => control = Some(args.next().ok_or("--control needs an address")?),
            "--once" => once = true,
            "--ready-file" => {
                ready_file = Some(args.next().ok_or("--ready-file needs a path")?);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        listen: listen.ok_or("--listen is required")?,
        control,
        once,
        ready_file,
    })
}

fn run(args: &Args) -> Result<(), String> {
    let listener = TcpListener::bind(&args.listen)
        .map_err(|err| format!("cannot bind deployment listener on {}: {err}", args.listen))?;
    let listen_addr = listener
        .local_addr()
        .map_err(|err| format!("listener has no local address: {err}"))?;
    println!("spe-node: deployments on {listen_addr}");

    let registry = MetricsRegistry::new();
    let control = match &args.control {
        Some(addr) => {
            let server = ControlPlane::new(registry.clone())
                .serve_on(addr)
                .map_err(|err| format!("cannot serve control endpoint on {addr}: {err}"))?;
            println!("spe-node: control endpoint on {}", server.url(""));
            Some(server)
        }
        None => None,
    };

    if let Some(path) = &args.ready_file {
        let control_line = control
            .as_ref()
            .map_or(String::new(), |s| s.addr().to_string());
        std::fs::write(path, format!("{listen_addr}\n{control_line}\n"))
            .map_err(|err| format!("cannot write ready file {path}: {err}"))?;
    }

    let max = args.once.then_some(1);
    let result = run_node(listener, &registry, NetworkConfig::unlimited(), max)
        .map_err(|err| format!("deployment listener failed: {err}"));
    if let Some(server) = control {
        server.shutdown();
    }
    result
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(reason) => {
            println!("spe-node: {reason}");
            println!("usage: spe-node --listen ADDR [--control ADDR] [--once] [--ready-file PATH]");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(reason) => {
            println!("spe-node failed: {reason}");
            ExitCode::FAILURE
        }
    }
}
