//! `spe-lint`: the workspace's static-analysis driver.
//!
//! Two check families, both built on `genealog-analysis`:
//!
//! * `spe-lint src [ROOT]` — textual source checks over every `.rs` file under
//!   `ROOT/crates` (default `.`): no direct standard-stream printing outside the
//!   `quick_bench` harness, `genealog_*` metric naming.
//! * `spe-lint plans [--deny-warnings]` — runs the deploy-time plan analyzer
//!   over the example-mirror suite (`genealog_repro::plans`) and prints each
//!   report; error-severity findings fail the run (`-D` semantics), warnings
//!   fail it only under `--deny-warnings`.
//! * `spe-lint all [ROOT]` — both.
//!
//! Exit code 0 when clean, 1 when any check fails. This binary is the one place
//! in the engine workspace allowed to print: it *is* the terminal reporter.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use genealog_analysis::source::{check_file, SourceViolation};
use genealog_repro::plans;

fn collect_rust_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn run_source_checks(root: &Path) -> Result<usize, String> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Err(format!("no `crates/` directory under {}", root.display()));
    }
    let mut files = Vec::new();
    collect_rust_files(&crates, &mut files);
    files.sort();
    let mut violations: Vec<SourceViolation> = Vec::new();
    for file in &files {
        let Ok(contents) = std::fs::read_to_string(file) else {
            continue;
        };
        // Report paths relative to the workspace root, matching the exemption
        // rules (`crates/bench`, `crates/metrics`) regardless of where the
        // binary runs from.
        let rel = file.strip_prefix(root).unwrap_or(file);
        violations.extend(check_file(&rel.to_string_lossy(), &contents));
    }
    for v in &violations {
        println!("{}", v.render());
    }
    println!(
        "spe-lint src: {} file(s) checked, {} violation(s)",
        files.len(),
        violations.len()
    );
    if violations.is_empty() {
        Ok(files.len())
    } else {
        Err(format!("{} source violation(s)", violations.len()))
    }
}

fn run_plan_checks(deny_warnings: bool) -> Result<(), String> {
    let mut errors = 0;
    let mut warnings = 0;
    for plan in plans::analyze_all() {
        errors += plan.report.error_count();
        warnings += plan.report.warning_count();
        if plan.report.is_empty() {
            println!("plan `{}`: clean", plan.name);
        } else {
            println!("plan `{}`:", plan.name);
            for line in plan.report.render().lines() {
                println!("  {line}");
            }
        }
    }
    println!("spe-lint plans: {errors} error(s), {warnings} warning(s)");
    if errors > 0 || (deny_warnings && warnings > 0) {
        Err(format!("{errors} error(s), {warnings} warning(s)"))
    } else {
        Ok(())
    }
}

fn usage() -> ExitCode {
    println!("usage: spe-lint <src [ROOT] | plans [--deny-warnings] | all [ROOT]>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else {
        return usage();
    };
    let root = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let result = match mode.as_str() {
        "src" => run_source_checks(&root).map(|_| ()),
        "plans" => run_plan_checks(deny_warnings),
        "all" => run_source_checks(&root)
            .map(|_| ())
            .and_then(|()| run_plan_checks(deny_warnings)),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(reason) => {
            println!("spe-lint failed: {reason}");
            ExitCode::FAILURE
        }
    }
}
